package main

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"treesched/internal/server"
	"treesched/internal/workload"
)

// startDaemon launches run() with an OS-assigned port and waits for
// the bound address, returning the base URL and the exit-code
// channel.
func startDaemon(t *testing.T, extra ...string) (string, chan int, *bytes.Buffer) {
	t.Helper()
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	var out, errb bytes.Buffer
	args := append([]string{"-listen", "127.0.0.1:0", "-addr-file", addrFile}, extra...)
	code := make(chan int, 1)
	go func() { code <- run(args, &out, &errb) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return "http://" + strings.TrimSpace(string(b)), code, &errb
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never wrote its address; stderr: %s", errb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDaemonEndToEnd(t *testing.T) {
	base, code, errb := startDaemon(t)
	cl := &server.Client{Base: base}
	ctx := context.Background()

	jobs := make([]workload.Job, 50)
	for i := range jobs {
		jobs[i] = workload.Job{Release: float64(i) * 0.5, Size: float64(1 + i%7)}
	}
	res, err := cl.Submit(ctx, jobs)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if res.Accepted != len(jobs) {
		t.Fatalf("accepted %d of %d", res.Accepted, len(jobs))
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Accepted != len(jobs) {
		t.Fatalf("stats accepted = %d, want %d", st.Accepted, len(jobs))
	}
	final, err := cl.Drain(ctx)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if final.Completed != len(jobs) {
		t.Fatalf("drained %d of %d jobs", final.Completed, len(jobs))
	}
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit code %d, stderr: %s", c, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not exit after drain; stderr: %s", errb.String())
	}
}

func TestDaemonScenarioFile(t *testing.T) {
	dir := t.TempDir()
	scFile := filepath.Join(dir, "serve.txt")
	if err := os.WriteFile(scFile, []byte("topo=star:4 policy=srpt serve\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base, code, errb := startDaemon(t, "-scenario", scFile)
	cl := &server.Client{Base: base}
	ctx := context.Background()
	if _, err := cl.Submit(ctx, []workload.Job{{Release: 0, Size: 2}}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := cl.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if c := <-code; c != 0 {
		t.Fatalf("exit code %d, stderr: %s", c, errb.String())
	}
}

func TestDaemonRejectsOfflineScenarioFile(t *testing.T) {
	dir := t.TempDir()
	scFile := filepath.Join(dir, "offline.txt")
	if err := os.WriteFile(scFile, []byte("topo=star:4 n=10 size=uniform:1,4 load=0.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if c := run([]string{"-scenario", scFile, "-listen", "127.0.0.1:0"}, &out, &errb); c != 1 {
		t.Fatalf("exit code %d for an offline scenario, want 1; stderr: %s", c, errb.String())
	}
	if !strings.Contains(errb.String(), "serve") {
		t.Fatalf("error does not mention serve mode: %s", errb.String())
	}
}

// syncBuf is a locked buffer for output the test reads while the
// daemon goroutine is still writing.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestDaemonPprofFlag(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	var out, errb syncBuf
	code := make(chan int, 1)
	go func() {
		code <- run([]string{
			"-listen", "127.0.0.1:0", "-addr-file", addrFile,
			"-pprof", "127.0.0.1:0",
		}, &out, &errb)
	}()

	// The pprof address is OS-assigned; scrape it from the startup log.
	var pprofBase string
	deadline := time.Now().Add(10 * time.Second)
	for pprofBase == "" {
		s := out.String()
		if i := strings.Index(s, "pprof on http://"); i >= 0 {
			rest := s[i+len("pprof on http://"):]
			if j := strings.Index(rest, "/debug/pprof/"); j >= 0 {
				pprofBase = "http://" + rest[:j]
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced the pprof listener; stdout: %s stderr: %s", out.String(), errb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(pprofBase + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET pprof index: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d, want 200", resp.StatusCode)
	}

	// The profiling surface must not leak onto the serving address.
	b, err := os.ReadFile(addrFile)
	if err != nil {
		t.Fatal(err)
	}
	mainBase := "http://" + strings.TrimSpace(string(b))
	resp, err = http.Get(mainBase + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof handlers exposed on the serving address")
	}

	cl := &server.Client{Base: mainBase}
	if _, err := cl.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if c := <-code; c != 0 {
		t.Fatalf("exit code %d, stderr: %s", c, errb.String())
	}
}

func TestDaemonFlagError(t *testing.T) {
	var out, errb bytes.Buffer
	if c := run([]string{"-bogus"}, &out, &errb); c != 2 {
		t.Fatalf("exit code %d for a flag error, want 2", c)
	}
}
