package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func doc(lines ...benchLine) *benchFile {
	return &benchFile{Schema: "treesched-bench/2", Benchmarks: lines}
}

func TestRegressions(t *testing.T) {
	base := doc(
		benchLine{Name: "engine/cold", NsPerOp: 1000},
		benchLine{Name: "engine/warm", NsPerOp: 800},
		benchLine{Name: "retired/kernel", NsPerOp: 500},
	)

	// Within threshold: +25% exactly does not fail.
	cur := doc(
		benchLine{Name: "engine/cold", NsPerOp: 1250},
		benchLine{Name: "engine/warm", NsPerOp: 700},
		benchLine{Name: "brand/new", NsPerOp: 9999},
	)
	if regs := regressions(base, cur, 0.25); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}

	// Past threshold: only the offending kernel is reported, by name.
	cur = doc(
		benchLine{Name: "engine/cold", NsPerOp: 1300},
		benchLine{Name: "engine/warm", NsPerOp: 800},
	)
	regs := regressions(base, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "engine/cold") {
		t.Fatalf("regressions = %v, want one naming engine/cold", regs)
	}

	// A zero-ns baseline entry (corrupt or placeholder) never divides.
	base = doc(benchLine{Name: "engine/cold", NsPerOp: 0})
	if regs := regressions(base, cur, 0.25); len(regs) != 0 {
		t.Fatalf("zero baseline produced regressions: %v", regs)
	}
}

func TestReadBenchFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(`{"schema":"treesched-bench/2","benchmarks":[{"name":"engine/cold","ns_per_op":42}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0].NsPerOp != 42 {
		t.Fatalf("read %+v", got)
	}
	if _, err := readBenchFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBenchFile(bad); err == nil {
		t.Fatal("malformed file accepted")
	}
}

func TestOneSidedKernels(t *testing.T) {
	base := doc(
		benchLine{Name: "engine/cold", NsPerOp: 1000},
		benchLine{Name: "retired/kernel", NsPerOp: 500},
	)
	cur := doc(
		benchLine{Name: "engine/cold", NsPerOp: 1000},
		benchLine{Name: "engine/sharded", NsPerOp: 300},
	)
	notes := oneSided(base, cur)
	if len(notes) != 2 {
		t.Fatalf("notes = %v, want one per one-sided kernel", notes)
	}
	if !strings.Contains(notes[0], "engine/sharded") || !strings.Contains(notes[0], "new") {
		t.Fatalf("first note %q should flag engine/sharded as new", notes[0])
	}
	if !strings.Contains(notes[1], "retired/kernel") || !strings.Contains(notes[1], "baseline") {
		t.Fatalf("second note %q should flag retired/kernel as baseline-only", notes[1])
	}
	// One-sided kernels never count as regressions, whatever their numbers.
	if regs := regressions(base, cur, 0.25); len(regs) != 0 {
		t.Fatalf("one-sided kernels produced regressions: %v", regs)
	}
	// Identical files produce no notes.
	if notes := oneSided(base, base); len(notes) != 0 {
		t.Fatalf("identical files produced notes: %v", notes)
	}
}

func TestOneSidedSchemaBump(t *testing.T) {
	base := doc(benchLine{Name: "engine/cold", NsPerOp: 1000})
	cur := &benchFile{Schema: "treesched-bench/4", Benchmarks: []benchLine{
		{Name: "engine/cold", NsPerOp: 900},
		{Name: "engine/stream-1M", NsPerOp: 5000},
	}}
	notes := oneSided(base, cur)
	if len(notes) != 2 {
		t.Fatalf("notes = %v, want schema note + new-kernel note", notes)
	}
	if !strings.Contains(notes[0], "schema changed") || !strings.Contains(notes[0], "treesched-bench/4") {
		t.Fatalf("first note %q should describe the schema bump", notes[0])
	}
	// The bump is informational: shared kernels still gate regressions.
	cur.Benchmarks[0].NsPerOp = 2000
	if regs := regressions(base, cur, 0.25); len(regs) != 1 {
		t.Fatalf("regressions across a schema bump = %v, want the shared kernel to still compare", regs)
	}
}
