// Command bench is the persistent benchmark harness: it runs a fixed
// set of engine and experiment kernels through testing.Benchmark and
// writes the results as machine-readable JSON (BENCH_<schema>.json),
// so perf regressions show up as diffs rather than folklore.
//
// Usage:
//
//	bench [-out BENCH_9.json] [-seed 1] [-scale 0.05] [-quick]
//	      [-compare BENCH_9.json] [-cpuprofile cpu.out] [-memprofile mem.out]
//	      [-stream-smoke] [-fleet-smoke] [-serve-smoke] [-dispatch]
//
// -compare checks the fresh results against a previously written
// baseline file and exits with status 3 if any kernel's ns/op
// regressed by more than 25%. Kernels present in only one of the two
// files (new or retired) are noted and never fail the comparison, as
// is a schema bump between the two files.
//
// -stream-smoke runs only the constant-memory probe: a 1,000,000-job
// streamed run under bounded retention, failing (exit 4) if the peak
// heap exceeds a fixed ceiling or is not flat (within 2x) relative to
// a 100,000-job run.
//
// -fleet-smoke runs only the fleet determinism probe: the
// fleet/jsq-4tree scenario at Workers=1 and Workers=4, failing (exit
// 5) unless the scorecard JSON and every tree's per-job NDJSON are
// byte-identical — the worker count must be a pure speed knob.
//
// -serve-smoke runs only the serving-layer overload probe: a daemon
// over a speed-1 tree is offered five times its capacity, and the
// probe fails (exit 6) unless the daemon sheds with 429 +
// Retry-After, keeps the shed count monotone and the heap under the
// smoke ceiling, reopens admission after a quiet period, and drains
// every accepted job with a completion stream byte-identical to an
// offline RunStream replay of the accepted (densely re-IDed) trace.
// The probe then measures the warm clean path on a second, stable
// daemon and fails if the steady-state malloc count per admitted job
// exceeds a fixed ceiling — the guard that keeps the batched
// admission path and append codecs allocation-free as they evolve.
//
// -dispatch runs only the engine/dispatch-* kernels and writes no
// JSON — the fast iteration loop for profiling the dispatch path
// (pair it with -cpuprofile; see `make bench-dispatch`).
//
// Kernels:
//
//	engine/cold        fresh engine per run (sim.Run)
//	engine/warm        one engine recycled via Sim.Reset + RunOn
//	engine/instrumented  warm engine with per-hop instrumentation on
//	engine/wide-warm   sequential warm engine on the wide (fan-out 8)
//	                   topology — the baseline the sharded rows divide by
//	engine/sharded     subtree-sharded engine at Workers = GOMAXPROCS on
//	                   the same wide workload (bit-identical schedule)
//	engine/dispatch-warm      sequential state-querying (greedy) dispatch
//	                          on the wide topology — the baseline the
//	                          dispatch-parallel row divides by
//	engine/dispatch-parallel  the same greedy workload at
//	                          Workers = GOMAXPROCS: shards advance in
//	                          parallel between arrivals while the
//	                          F-statistic queries and commits stay in
//	                          arrival order (bit-identical schedule)
//	engine/dispatch-deep      greedy dispatch on a deep, narrow
//	                          topology (depth-6 root-to-leaf paths):
//	                          store-and-forward hop work dominates, so
//	                          this row exercises the memoized
//	                          path-query and reschedule machinery the
//	                          wide row under-weights
//	engine/skew-sharded  skewed topology (one fat root-child subtree)
//	                     at Workers = GOMAXPROCS with root-child
//	                     sharding only — the fat shard serializes
//	engine/skew-split    the same skewed workload with SplitShards on,
//	                     so the fat subtree splits into sub-shards
//	scenario/run       declarative layer: scenario.Runner on the same
//	                   workload as engine/warm (overhead shows as the
//	                   delta between the two rows)
//	engine/stream-1M   1,000,000 jobs streamed from the Poisson
//	                   generator under bounded retention (RetainJobs=1):
//	                   the constant-memory pipeline end to end
//	fleet/jsq-4tree    the fleet co-simulation layer end to end: four
//	                   fat trees behind a join-shortest-queue front
//	                   door with per-tree brownouts, run at
//	                   Workers = GOMAXPROCS
//	server/inject-drain  the scheduler-as-a-service daemon end to end:
//	                     one iteration starts a daemon on the serve
//	                     scenario, submits a fixed 2,000-job trace over
//	                     HTTP (NDJSON through admission) and drains;
//	                     events is the job count, so events/sec is
//	                     jobs/sec through the full HTTP path. The HTTP
//	                     listener and keep-alive client connection are
//	                     shared across iterations (serveHarness), so
//	                     the row times the daemon, not TCP churn
//	server/direct-stream the same 2,000-job trace through RunStream
//	                     directly (no HTTP, no admission queue); the
//	                     jobs/sec ratio against server/inject-drain is
//	                     the daemon's per-job serving overhead
//	server/concurrent-submit  the admission path under contention: the
//	                     same 2,000 jobs, all at release 0 (so frontier
//	                     monotonicity cannot reject an interleaving),
//	                     split across four clients POSTing their
//	                     partitions concurrently, then drained; events
//	                     is the job count
//
// Server kernels also report allocs_per_job (allocs/op divided by the
// trace length), the per-job serving-path allocation cost the
// -serve-smoke probe bounds.
//	rng_partition/legacy  generate a 2,000-job workload (sizes and
//	                      weights) from a legacy partition, where every
//	                      stream name aliases one shared state
//	rng_partition/keyed   the same generation from a keyed partition
//	                      (one derived stream per subsystem); the delta
//	                      vs the legacy row is the derivation overhead,
//	                      budgeted at 5%
//	experiments/T1     full T1 grid (exercises Sweep fan-out)
//	experiments/B3     speed-augmentation sweep (exercises Sweep)
//
// Engine kernels also report events/sec, computed from the kernel's
// deterministic event count, so throughput is comparable across
// machines independently of the workload mix. The JSON additionally
// carries a stream_memory table (peak heap of the bounded-retention
// run at 100k and 1M jobs — flat is the point) and two
// cores-vs-throughput scaling tables: engine/sharded (oblivious
// dispatch) and engine/dispatch-parallel (greedy, state-querying
// dispatch) rerun at every worker count from 1 to GOMAXPROCS. On a
// single-core machine the scaling tables are omitted (there is no
// parallelism to measure) and scaling_note says so; when GOMAXPROCS
// exceeds the physical core count (num_cpu) the tables are present
// but scaling_note flags that the workers time-share.
package main

import (
	"bytes"
	"context"
	"crypto/tls"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"treesched"
	"treesched/internal/experiments"
)

// benchFile is the JSON document written to -out.
type benchFile struct {
	Schema     string `json:"schema"`
	Go         string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// NumCPU is the physical core count (runtime.NumCPU). When
	// GOMAXPROCS exceeds it, the scaling tables measure time-shared
	// workers — scheduling overhead, not parallel speedup.
	NumCPU     int         `json:"num_cpu"`
	Seed       uint64      `json:"seed"`
	Scale      float64     `json:"scale"`
	Benchmarks []benchLine `json:"benchmarks"`
	// StreamMemory records the constant-memory property of the
	// streaming pipeline: peak heap of a bounded-retention streamed run
	// at two job counts an order of magnitude apart. Flat (within 2x)
	// peaks are the acceptance bar.
	StreamMemory []streamMemRow `json:"stream_memory,omitempty"`
	// Scaling is the cores-vs-throughput table for oblivious dispatch:
	// the engine/sharded kernel rerun at each worker count from 1 to
	// GOMAXPROCS on the wide topology. Speedup is relative to the
	// workers=1 row of this table. Omitted when GOMAXPROCS is 1 (see
	// ScalingNote).
	Scaling []scalingRow `json:"scaling,omitempty"`
	// DispatchScaling is the same table for state-querying (greedy)
	// dispatch: the engine/dispatch-parallel kernel rerun at each
	// worker count. Its ceiling is lower than oblivious dispatch's
	// because every arrival is a barrier (advance shards to the
	// release time, then query and commit sequentially).
	DispatchScaling []scalingRow `json:"dispatch_scaling,omitempty"`
	// ScalingNote explains absent (or time-shared) scaling tables.
	ScalingNote string `json:"scaling_note,omitempty"`
	// SkewBalance records the structural load balance of the skew
	// kernels with and without sub-shard splitting: the shard count
	// and the largest shard's share of the leaves. The largest share
	// is the serial fraction of a sharded run, so it bounds the
	// achievable parallel speedup independently of this machine's
	// core count (which is why it is reported even where the timing
	// rows cannot show a speedup).
	SkewBalance []skewBalanceRow `json:"skew_balance,omitempty"`
	// DispatchBaseline is the before/after record for the v9 dispatch
	// fast path (epoch-memoized path queries, bound-pruned greedy
	// descent, incremental fstat maintenance): each engine/dispatch-*
	// kernel's ns/op from this run next to its pre-fast-path
	// baseline. Single-core absolute numbers wander ±10-20% with host
	// noise, so the interleaved A/B rows (minimum of repeated 1s runs
	// of the old and new builds on the same day) carry the honest
	// speedup; the retired BENCH_8.json record row is kept for
	// continuity across the schema bump.
	DispatchBaseline []dispatchBaselineRow `json:"dispatch_baseline,omitempty"`
}

type dispatchBaselineRow struct {
	Name            string  `json:"name"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	NsPerOp         float64 `json:"ns_per_op"`
	Speedup         float64 `json:"speedup"`
	Source          string  `json:"source"`
}

// Pre-fast-path dispatch baselines. The BENCH_8 number is the retired
// record's engine/dispatch-warm row; the A/B numbers are minima of
// repeated 1s harness runs of the last pre-fast-path build
// interleaved with the v9 build on the same single-core host.
const (
	dispatchWarmBench8Ns = 5_503_975
	dispatchWarmOldABNs  = 5_970_000
	dispatchWarmNewABNs  = 3_850_000
	dispatchDeepOldABNs  = 9_480_000
	dispatchDeepNewABNs  = 6_070_000
)

type skewBalanceRow struct {
	SplitShards       int     `json:"split_shards"`
	Shards            int     `json:"shards"`
	MaxShardLeafShare float64 `json:"max_shard_leaf_share"`
}

type streamMemRow struct {
	Jobs          int    `json:"jobs"`
	Events        int64  `json:"events"`
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
}

type scalingRow struct {
	Workers      int     `json:"workers"`
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup"`
}

type benchLine struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// AllocsPerJob is allocs/op divided by the kernel's job count —
	// reported for the server/* kernels only, where one op is a fixed
	// trace through the serving path and per-job allocation is the
	// figure of merit the serve-smoke probe bounds.
	AllocsPerJob float64 `json:"allocs_per_job,omitempty"`
}

// kernel is one named benchmark; events is the deterministic number of
// engine events one iteration processes (0 when not meaningful).
type kernel struct {
	name   string
	events int64
	fn     func(b *testing.B)
}

func main() {
	out := flag.String("out", "BENCH_9.json", "write JSON results to this file")
	seed := flag.Uint64("seed", 1, "random seed (kernels are deterministic given a seed)")
	scale := flag.Float64("scale", 0.05, "experiment-kernel scale factor")
	quick := flag.Bool("quick", false, "short benchtime (~50ms/kernel) for CI smoke runs")
	compare := flag.String("compare", "", "baseline JSON to compare against; exit 3 on >25% ns/op regression in any kernel")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	smoke := flag.Bool("stream-smoke", false, "run only the constant-memory stream probe; exit 4 if the 1M-job peak heap breaks the ceiling or is not flat vs 100k jobs")
	fltSmoke := flag.Bool("fleet-smoke", false, "run only the fleet determinism probe; exit 5 if the scorecard or any tree's NDJSON differs between Workers=1 and Workers=4")
	srvSmoke := flag.Bool("serve-smoke", false, "run only the serving-layer overload probe; exit 6 unless the daemon sheds with 429 + Retry-After, stays under the heap ceiling, and drains byte-identically to an offline replay")
	dispatchOnly := flag.Bool("dispatch", false, "run only the engine/dispatch-* kernels and write no JSON (profiling loop; pair with -cpuprofile)")
	testing.Init()
	flag.Parse()

	if *smoke {
		os.Exit(streamSmoke(*seed))
	}
	if *fltSmoke {
		os.Exit(fleetSmoke(*seed))
	}
	if *srvSmoke {
		os.Exit(serveSmoke(*seed))
	}

	benchtime := "1s"
	if *quick {
		benchtime = "50ms"
	}
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		fatal(err)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *dispatchOnly {
		// Profiling loop: only the dispatch kernels run and nothing is
		// written, so a partial result can never clobber BENCH_9.json.
		kernels, _, _, err := buildKernels(*seed, *scale, 0)
		if err != nil {
			fatal(err)
		}
		for _, k := range kernels {
			if !strings.HasPrefix(k.name, "engine/dispatch-") {
				continue
			}
			r := testing.Benchmark(k.fn)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			fmt.Fprintf(os.Stderr, "%-24s %12.0f ns/op %10d allocs/op %12d B/op\n",
				k.name, ns, r.AllocsPerOp(), r.AllocedBytesPerOp())
		}
		return
	}

	// The stream-memory probe doubles as the calibration run for the
	// engine/stream-1M kernel's event count.
	var streamRows []streamMemRow
	for _, jobs := range []int{100_000, 1_000_000} {
		row, err := streamPeak(*seed, jobs)
		if err != nil {
			fatal(err)
		}
		streamRows = append(streamRows, row)
		fmt.Fprintf(os.Stderr, "stream-memory jobs=%-8d %12d B peak heap\n", row.Jobs, row.PeakHeapBytes)
	}

	kernels, scaling, dispatchScaling, err := buildKernels(*seed, *scale, streamRows[1].Events)
	if err != nil {
		fatal(err)
	}

	doc := benchFile{
		Schema:       "treesched-bench/9",
		Go:           runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Seed:         *seed,
		Scale:        *scale,
		StreamMemory: streamRows,
	}
	for _, k := range kernels {
		r := testing.Benchmark(k.fn)
		line := benchLine{
			Name:        k.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if k.events > 0 && line.NsPerOp > 0 {
			line.EventsPerSec = float64(k.events) * 1e9 / line.NsPerOp
		}
		if k.events > 0 && strings.HasPrefix(k.name, "server/") {
			line.AllocsPerJob = float64(line.AllocsPerOp) / float64(k.events)
		}
		doc.Benchmarks = append(doc.Benchmarks, line)
		fmt.Fprintf(os.Stderr, "%-24s %12.0f ns/op %10d allocs/op %12d B/op\n",
			k.name, line.NsPerOp, line.AllocsPerOp, line.BytesPerOp)
		if k.name == "engine/dispatch-warm" {
			doc.DispatchBaseline = append(doc.DispatchBaseline,
				dispatchBaselineRow{
					Name:            k.name,
					BaselineNsPerOp: dispatchWarmBench8Ns,
					NsPerOp:         line.NsPerOp,
					Speedup:         dispatchWarmBench8Ns / line.NsPerOp,
					Source:          "retired BENCH_8.json record (different day; single-core host noise ±10-20%)",
				},
				dispatchBaselineRow{
					Name:            k.name,
					BaselineNsPerOp: dispatchWarmOldABNs,
					NsPerOp:         dispatchWarmNewABNs,
					Speedup:         dispatchWarmOldABNs / float64(dispatchWarmNewABNs),
					Source:          "interleaved A/B minima, pre-fast-path build vs v9 on the same harness",
				})
		}
		if k.name == "engine/dispatch-deep" {
			doc.DispatchBaseline = append(doc.DispatchBaseline,
				dispatchBaselineRow{
					Name:            k.name,
					BaselineNsPerOp: dispatchDeepOldABNs,
					NsPerOp:         dispatchDeepNewABNs,
					Speedup:         dispatchDeepOldABNs / float64(dispatchDeepNewABNs),
					Source:          "interleaved A/B minima, pre-fast-path build vs v9 on the same harness (kernel is new in v9)",
				})
		}
	}
	if doc.GOMAXPROCS > 1 {
		doc.Scaling = scaling()
		for _, row := range doc.Scaling {
			fmt.Fprintf(os.Stderr, "engine/sharded workers=%-2d %12.0f ns/op %14.0f events/sec %6.2fx\n",
				row.Workers, row.NsPerOp, row.EventsPerSec, row.Speedup)
		}
		doc.DispatchScaling = dispatchScaling()
		for _, row := range doc.DispatchScaling {
			fmt.Fprintf(os.Stderr, "engine/dispatch-parallel workers=%-2d %12.0f ns/op %14.0f events/sec %6.2fx\n",
				row.Workers, row.NsPerOp, row.EventsPerSec, row.Speedup)
		}
		if doc.GOMAXPROCS > doc.NumCPU {
			doc.ScalingNote = fmt.Sprintf("GOMAXPROCS=%d exceeds num_cpu=%d: scaling rows time-share the physical cores, so speedups bound coordination overhead rather than measuring parallel gain",
				doc.GOMAXPROCS, doc.NumCPU)
			fmt.Fprintln(os.Stderr, "bench: note:", doc.ScalingNote)
		}
	} else {
		// One core: every worker count would time the same sequential
		// schedule, so a "speedup" column would only report noise.
		doc.ScalingNote = "GOMAXPROCS=1: cores-vs-throughput tables omitted (single core, no parallel speedup to measure)"
		fmt.Fprintln(os.Stderr, "bench: note:", doc.ScalingNote)
	}
	for _, split := range []int{0, skewSplit} {
		row, err := skewBalance(split)
		if err != nil {
			fatal(err)
		}
		doc.SkewBalance = append(doc.SkewBalance, row)
		fmt.Fprintf(os.Stderr, "skew-balance split=%-2d shards=%-2d max shard leaf share %.3f\n",
			row.SplitShards, row.Shards, row.MaxShardLeafShare)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d kernels)\n", *out, len(doc.Benchmarks))

	if *compare != "" {
		base, err := readBenchFile(*compare)
		if err != nil {
			fatal(err)
		}
		for _, n := range oneSided(base, &doc) {
			fmt.Fprintln(os.Stderr, "bench: note:", n)
		}
		regs := regressions(base, &doc, regressionThreshold)
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "bench: REGRESSION:", r)
		}
		if len(regs) > 0 {
			os.Exit(3)
		}
		fmt.Fprintf(os.Stderr, "bench: no kernel regressed >%.0f%% vs %s\n", 100*regressionThreshold, *compare)
	}
}

// regressionThreshold is the relative ns/op slowdown that fails a
// -compare run.
const regressionThreshold = 0.25

func readBenchFile(path string) (*benchFile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := &benchFile{}
	if err := json.Unmarshal(buf, doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return doc, nil
}

// oneSided describes differences that are informational only and
// never fail a comparison: a schema bump between the two files, and
// kernels present in only one of them — new kernels in current,
// retired ones in the baseline — so comparing across a schema bump
// stays green.
func oneSided(baseline, current *benchFile) []string {
	base := make(map[string]bool, len(baseline.Benchmarks))
	cur := make(map[string]bool, len(current.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = true
	}
	for _, c := range current.Benchmarks {
		cur[c.Name] = true
	}
	var out []string
	if baseline.Schema != current.Schema {
		out = append(out, fmt.Sprintf("schema changed (%s -> %s): one-sided kernels below are expected, shared kernels still compare",
			baseline.Schema, current.Schema))
	}
	for _, c := range current.Benchmarks {
		if !base[c.Name] {
			out = append(out, fmt.Sprintf("kernel %s is new (absent from baseline); not compared", c.Name))
		}
	}
	for _, b := range baseline.Benchmarks {
		if !cur[b.Name] {
			out = append(out, fmt.Sprintf("kernel %s exists only in the baseline; not compared", b.Name))
		}
	}
	return out
}

// regressions compares current against baseline kernel by kernel and
// describes every one whose ns/op grew by more than threshold.
// Kernels present in only one file are skipped (see oneSided).
func regressions(baseline, current *benchFile, threshold float64) []string {
	base := make(map[string]benchLine, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}
	var out []string
	for _, c := range current.Benchmarks {
		b, ok := base[c.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		if c.NsPerOp > b.NsPerOp*(1+threshold) {
			out = append(out, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%, threshold %.0f%%)",
				c.Name, b.NsPerOp, c.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), 100*threshold))
		}
	}
	return out
}

// buildKernels constructs the kernel set plus the deferred scaling
// tables — oblivious (engine/sharded) and state-querying
// (engine/dispatch-parallel) — deferred so their timed runs happen
// after the named kernels, matching the output order. The engine
// workload is fixed (seed-derived) so one calibration run yields the
// event count every timed iteration will reproduce; streamEvents is
// the stream-1M kernel's count, calibrated by the stream-memory probe.
func buildKernels(seed uint64, scale float64, streamEvents int64) ([]kernel, func() []scalingRow, func() []scalingRow, error) {
	t := treesched.FatTree(2, 2, 2)
	tr, err := treesched.PoissonTrace(seed+41, 2000, 0.95, t)
	if err != nil {
		return nil, nil, nil, err
	}
	calib, err := treesched.Run(t, tr, treesched.NewGreedyIdentical(0.5), treesched.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	events := calib.Stats.Events

	ks := []kernel{
		{
			name:   "engine/cold",
			events: events,
			fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := treesched.Run(t, tr, treesched.NewGreedyIdentical(0.5), treesched.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name:   "engine/warm",
			events: events,
			fn: func(b *testing.B) {
				s := treesched.NewSim(t, treesched.Options{})
				asg := treesched.NewGreedyIdentical(0.5)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Reset(treesched.Options{})
					if _, err := treesched.RunOn(s, tr, asg); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name:   "engine/instrumented",
			events: events,
			fn: func(b *testing.B) {
				s := treesched.NewSim(t, treesched.Options{Instrument: true})
				asg := treesched.NewGreedyIdentical(0.5)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Reset(treesched.Options{Instrument: true})
					if _, err := treesched.RunOn(s, tr, asg); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
	}

	// The declarative layer on the same workload: the scenario below
	// reproduces tr bit for bit (PoissonTrace is uniform:1,16 with
	// class rounding at eps 0.5), so scenario/run vs engine/warm
	// isolates the layer's own overhead.
	sc := &treesched.Scenario{
		Topology: treesched.NewSpec("fattree", 2, 2, 2),
		Workload: treesched.ScenarioWorkload{
			N: 2000, Size: treesched.NewSpec("uniform", 1, 16), ClassEps: 0.5, Load: 0.95,
		},
		Assigner: "greedy-identical",
		Seed:     seed + 41,
	}
	r, err := treesched.NewScenarioRunner(sc)
	if err != nil {
		return nil, nil, nil, err
	}
	scCalib, err := r.Run()
	if err != nil {
		return nil, nil, nil, err
	}
	ks = append(ks, kernel{
		name:   "scenario/run",
		events: scCalib.Stats.Events,
		fn: func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Run(); err != nil {
					b.Fatal(err)
				}
			}
		},
	})

	// The streaming pipeline end to end: a million Poisson jobs drawn
	// one at a time and retired through bounded retention, so B/op is
	// the whole run's footprint and must stay at setup cost rather
	// than growing with the job count. Runs on streamTree (speed 1.5)
	// — see streamPeak for why stability matters here.
	st := streamTree()
	ks = append(ks, kernel{
		name:   "engine/stream-1M",
		events: streamEvents,
		fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				src, err := treesched.PoissonSource(seed+47, streamJobs, 0.95, st)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := treesched.RunStream(st, src, treesched.NewGreedyIdentical(0.5), treesched.Options{RetainJobs: 1}); err != nil {
					b.Fatal(err)
				}
			}
		},
	})

	for _, id := range []string{"T1", "B3"} {
		e, err := experiments.ByID(id)
		if err != nil {
			return nil, nil, nil, err
		}
		ks = append(ks, kernel{
			name: "experiments/" + id,
			fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, err := e.Run(experiments.Config{Seed: seed, Scale: scale})
					if err != nil {
						b.Fatal(err)
					}
					if len(out.Tables) == 0 {
						b.Fatal("no artifacts")
					}
				}
			},
		})
	}

	// The sharded-engine rows run on a wide topology (fan-out 8 at the
	// root) because the speedup ceiling is the root-child count; the
	// dispatch is round-robin, an oblivious assigner, so injection
	// itself runs per shard. The schedule is bit-identical to the
	// sequential wide-warm row at every worker count.
	wide := treesched.FatTree(8, 1, 2)
	wideTr, err := treesched.PoissonTrace(seed+43, 4000, 0.95, wide)
	if err != nil {
		return nil, nil, nil, err
	}
	wideCalib, err := treesched.Run(wide, wideTr, &treesched.RoundRobin{}, treesched.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	wideEvents := wideCalib.Stats.Events
	warmShardedFn := func(workers int) func(b *testing.B) {
		opts := treesched.Options{Workers: workers}
		return func(b *testing.B) {
			s := treesched.NewSim(wide, opts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Reset(opts)
				if _, err := treesched.RunOn(s, wideTr, &treesched.RoundRobin{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	maxWorkers := runtime.GOMAXPROCS(0)
	ks = append(ks,
		kernel{name: "engine/wide-warm", events: wideEvents, fn: warmShardedFn(1)},
		kernel{name: "engine/sharded", events: wideEvents, fn: warmShardedFn(maxWorkers)},
	)

	// The dispatch rows run the same wide workload under the greedy
	// (state-querying) assigner: arrivals are commit barriers, so the
	// parallelism is in advancing shards between arrivals, not in
	// dispatch itself. The schedule is bit-identical to the sequential
	// dispatch-warm row at every worker count.
	dispatchCalib, err := treesched.Run(wide, wideTr, treesched.NewGreedyIdentical(0.5), treesched.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	dispatchEvents := dispatchCalib.Stats.Events
	dispatchFn := func(workers int) func(b *testing.B) {
		opts := treesched.Options{Workers: workers}
		return func(b *testing.B) {
			s := treesched.NewSim(wide, opts)
			asg := treesched.NewGreedyIdentical(0.5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Reset(opts)
				if _, err := treesched.RunOn(s, wideTr, asg); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	ks = append(ks,
		kernel{name: "engine/dispatch-warm", events: dispatchEvents, fn: dispatchFn(1)},
		kernel{name: "engine/dispatch-parallel", events: dispatchEvents, fn: dispatchFn(maxWorkers)},
	)

	// The dispatch-deep row runs the greedy assigner on a deep, narrow
	// topology (two branches, depth-6 root-to-leaf paths): each job
	// crosses five routers before its leaf, so store-and-forward finish
	// events and per-hop reschedules dominate and the row weights the
	// engine half of the dispatch tax — the complement of the wide row,
	// where the per-arrival candidate scan dominates.
	deep := treesched.FatTree(2, 5, 1)
	deepTr, err := treesched.PoissonTrace(seed+71, 4000, 0.95, deep)
	if err != nil {
		return nil, nil, nil, err
	}
	deepCalib, err := treesched.Run(deep, deepTr, treesched.NewGreedyIdentical(0.5), treesched.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	ks = append(ks, kernel{name: "engine/dispatch-deep", events: deepCalib.Stats.Events, fn: func(b *testing.B) {
		opts := treesched.Options{Workers: 1}
		s := treesched.NewSim(deep, opts)
		asg := treesched.NewGreedyIdentical(0.5)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Reset(opts)
			if _, err := treesched.RunOn(s, deepTr, asg); err != nil {
				b.Fatal(err)
			}
		}
	}})

	// The skew rows compare root-child sharding against sub-shard
	// splitting on a deliberately unbalanced topology: one fat
	// root-child subtree (6 routers x 4 leaves) holding 24 of 28
	// leaves, plus two 2-leaf siblings. Without splitting the fat
	// shard serializes ~6/7 of the work no matter how many workers
	// run; SplitShards=4 breaks it into a head plus six sub-shards.
	skew := skewTree()
	skewTr, err := treesched.PoissonTrace(seed+53, 4000, 0.95, skew)
	if err != nil {
		return nil, nil, nil, err
	}
	skewCalib, err := treesched.Run(skew, skewTr, &treesched.RoundRobin{}, treesched.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	skewEvents := skewCalib.Stats.Events
	skewFn := func(split int) func(b *testing.B) {
		opts := treesched.Options{Workers: maxWorkers, SplitShards: split}
		return func(b *testing.B) {
			s := treesched.NewSim(skew, opts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Reset(opts)
				if _, err := treesched.RunOn(s, skewTr, &treesched.RoundRobin{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	ks = append(ks,
		kernel{name: "engine/skew-sharded", events: skewEvents, fn: skewFn(0)},
		kernel{name: "engine/skew-split", events: skewEvents, fn: skewFn(skewSplit)},
	)

	// The fleet kernel times the co-simulation layer end to end: one
	// iteration generates the front-door workload, routes it across
	// four trees, draws each tree's brownout plan, and runs the trees
	// on GOMAXPROCS workers. Same scenario as the -fleet-smoke probe.
	flSc := fleetScenario(seed)
	flCalib, err := treesched.RunFleet(flSc, treesched.FleetOptions{Workers: maxWorkers})
	if err != nil {
		return nil, nil, nil, err
	}
	var flEvents int64
	for i := range flCalib.Trees {
		flEvents += flCalib.Trees[i].Result.Stats.Events
	}
	ks = append(ks, kernel{
		name:   "fleet/jsq-4tree",
		events: flEvents,
		fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := treesched.RunFleet(flSc, treesched.FleetOptions{Workers: maxWorkers}); err != nil {
					b.Fatal(err)
				}
			}
		},
	})

	// The server rows time one fixed 2,000-job trace through the
	// scheduler-as-a-service daemon (HTTP admission -> engine
	// goroutine -> drain) and through RunStream directly; events is
	// the job count for both, so the events/sec ratio between them is
	// the daemon's end-to-end per-job serving overhead. The queue is
	// sized past the trace so a clean run never touches the shedder
	// (overload behavior is the -serve-smoke probe's job).
	srvSc := serveScenario()
	srvIn, err := srvSc.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	srvTr, err := treesched.PoissonTrace(seed+67, serveBenchJobs, 0.95, srvIn.Tree)
	if err != nil {
		return nil, nil, nil, err
	}
	// One prebuilt instance shared by every iteration's daemon, the
	// same way direct-stream shares srvIn.Tree across runs: the
	// engine treats a built tree as read-only, and rebuilding the
	// fixed serve topology per daemon would time the builder, not
	// the serving path.
	srvHarness := newServeHarness()
	ks = append(ks,
		kernel{
			name:   "server/inject-drain",
			events: int64(len(srvTr.Jobs)),
			fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					srv, err := treesched.NewServer(treesched.ServerConfig{
						Scenario: srvSc, Instance: srvIn, QueueDepth: 2 * serveBenchJobs,
					})
					if err != nil {
						b.Fatal(err)
					}
					srvHarness.swap(srv.Handler())
					cl := &treesched.ServerClient{Base: srvHarness.hs.URL, HTTP: srvHarness.client}
					res, err := cl.Submit(context.Background(), srvTr.Jobs)
					if err != nil {
						b.Fatal(err)
					}
					if res.Accepted != len(srvTr.Jobs) {
						b.Fatalf("daemon accepted %d of %d jobs", res.Accepted, len(srvTr.Jobs))
					}
					st, err := cl.Drain(context.Background())
					if err != nil {
						b.Fatal(err)
					}
					if st.Completed != len(srvTr.Jobs) {
						b.Fatalf("daemon drained %d of %d jobs", st.Completed, len(srvTr.Jobs))
					}
				}
			},
		},
		kernel{
			name:   "server/direct-stream",
			events: int64(len(srvTr.Jobs)),
			fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					opts := srvIn.Opts
					opts.RetainJobs = 1
					if _, err := treesched.RunStream(srvIn.Tree, treesched.NewTraceSource(srvTr), srvIn.Assigner, opts); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
	)

	// The concurrent-submit kernel times the admission path under
	// contention: the same trace with every release forced to 0 —
	// frontier monotonicity can never reject an interleaving — split
	// across four clients POSTing their partitions concurrently. The
	// schedule is not deterministic across interleavings (admission
	// order is racy by construction); the throughput of the shared
	// admission lock and batch pipeline is what is measured.
	ccJobs := make([]treesched.Job, len(srvTr.Jobs))
	copy(ccJobs, srvTr.Jobs)
	for i := range ccJobs {
		ccJobs[i].Release = 0
	}
	const ccClients = 4
	var ccParts [][]treesched.Job
	for i := 0; i < ccClients; i++ {
		lo, hi := i*len(ccJobs)/ccClients, (i+1)*len(ccJobs)/ccClients
		ccParts = append(ccParts, ccJobs[lo:hi])
	}
	ks = append(ks, kernel{
		name:   "server/concurrent-submit",
		events: int64(len(ccJobs)),
		fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				srv, err := treesched.NewServer(treesched.ServerConfig{
					Scenario: srvSc, Instance: srvIn, QueueDepth: 2 * serveBenchJobs,
				})
				if err != nil {
					b.Fatal(err)
				}
				srvHarness.swap(srv.Handler())
				var wg sync.WaitGroup
				errs := make(chan error, ccClients)
				for _, part := range ccParts {
					wg.Add(1)
					go func(part []treesched.Job) {
						defer wg.Done()
						cl := &treesched.ServerClient{Base: srvHarness.hs.URL, HTTP: srvHarness.client}
						res, err := cl.Submit(context.Background(), part)
						if err != nil {
							errs <- err
							return
						}
						if res.Accepted != len(part) {
							errs <- fmt.Errorf("client admitted %d of %d jobs", res.Accepted, len(part))
						}
					}(part)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
				cl := &treesched.ServerClient{Base: srvHarness.hs.URL, HTTP: srvHarness.client}
				st, err := cl.Drain(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if st.Completed != len(ccJobs) {
					b.Fatalf("daemon drained %d of %d jobs", st.Completed, len(ccJobs))
				}
			}
		},
	})

	// The rng_partition rows time identical workload generation (2,000
	// jobs with sizes and weights) from the two partition modes. Legacy
	// aliases every stream name to one shared state; keyed lazily
	// derives an independent stream per subsystem name. The keyed/legacy
	// ratio is the derivation overhead, budgeted at 5%.
	genWL := treesched.ScenarioWorkload{
		N: 2000, Size: treesched.NewSpec("uniform", 1, 16), Load: 0.95, Capacity: 2, MaxWeight: 5,
	}
	partitionFn := func(mk func() *treesched.PartitionedRNG) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := genWL.GenerateRNG(mk()); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	ks = append(ks,
		kernel{name: "rng_partition/legacy", fn: partitionFn(func() *treesched.PartitionedRNG {
			return treesched.NewLegacyRNG(seed + 61)
		})},
		kernel{name: "rng_partition/keyed", fn: partitionFn(func() *treesched.PartitionedRNG {
			return treesched.NewPartitionedRNG(treesched.SimulationKey(seed + 61))
		})},
	)

	scalingTable := func(events int64, fn func(int) func(b *testing.B)) func() []scalingRow {
		return func() []scalingRow {
			var rows []scalingRow
			for w := 1; w <= maxWorkers; w *= 2 {
				r := testing.Benchmark(fn(w))
				ns := float64(r.T.Nanoseconds()) / float64(r.N)
				row := scalingRow{Workers: w, NsPerOp: ns, EventsPerSec: float64(events) * 1e9 / ns}
				if len(rows) == 0 {
					row.Speedup = 1
				} else {
					row.Speedup = rows[0].NsPerOp / ns
				}
				rows = append(rows, row)
				if w < maxWorkers && w*2 > maxWorkers {
					w = maxWorkers / 2 // make the last iteration land on maxWorkers
				}
			}
			return rows
		}
	}
	return ks, scalingTable(wideEvents, warmShardedFn), scalingTable(dispatchEvents, dispatchFn), nil
}

// skewSplit is the SplitShards threshold the skew kernels use: the
// fat subtree (24 leaves, 6 children) splits, the 2-leaf siblings do
// not.
const skewSplit = 4

// skewBalance mirrors the engine's partition rule on the skew
// topology and reports the shard count plus the largest shard's leaf
// share. The count is cross-checked against the engine's NumShards so
// the mirror cannot drift from the real rule silently.
func skewBalance(split int) (skewBalanceRow, error) {
	t := skewTree()
	total := len(t.Leaves())
	var shardLeaves []int
	for _, h := range t.RootAdjacent() {
		sub := t.SubtreeLeaves(h)
		if kids := t.Children(h); split > 0 && len(sub) > split && len(kids) >= 2 {
			shardLeaves = append(shardLeaves, 0) // the head shard holds only h
			for _, c := range kids {
				shardLeaves = append(shardLeaves, len(t.SubtreeLeaves(c)))
			}
		} else {
			shardLeaves = append(shardLeaves, len(sub))
		}
	}
	if got := treesched.NewSim(t, treesched.Options{SplitShards: split}).NumShards(); got != len(shardLeaves) {
		return skewBalanceRow{}, fmt.Errorf("skew balance: partition mirror has %d shards, engine has %d", len(shardLeaves), got)
	}
	maxLeaves := 0
	for _, n := range shardLeaves {
		if n > maxLeaves {
			maxLeaves = n
		}
	}
	return skewBalanceRow{
		SplitShards:       split,
		Shards:            len(shardLeaves),
		MaxShardLeafShare: float64(maxLeaves) / float64(total),
	}, nil
}

// skewTree builds the deliberately unbalanced skew-kernel topology:
// one fat root-child subtree (6 routers x 4 leaves each) plus two
// 2-leaf siblings, so root-child sharding leaves 24 of 28 leaves in
// one shard.
func skewTree() *treesched.Tree {
	b := treesched.NewBuilder()
	fat := b.AddRouter(b.Root())
	for i := 0; i < 6; i++ {
		c := b.AddRouter(fat)
		for j := 0; j < 4; j++ {
			b.AddLeaf(c)
		}
	}
	for i := 0; i < 2; i++ {
		small := b.AddRouter(b.Root())
		b.AddLeaf(small)
		b.AddLeaf(small)
	}
	return b.MustFinalize()
}

// streamJobs is the stream kernel's job count; the memory probe runs
// it against a 10x-smaller control to show the peak heap is flat.
const (
	streamJobs      = 1_000_000
	streamProbeStep = 32768
	// smokeCeiling is the -stream-smoke heap bound for the 1M-job run:
	// generous against GC pacing noise, far below what materializing a
	// million jobs plus their task state would need.
	smokeCeiling = 64 << 20
	// smokeRatio bounds the 1M-vs-100k peak-heap growth ("flat").
	smokeRatio = 2.0
)

// streamTree is the stream kernel's topology: the standard fat tree
// at speed 1.5, so load 0.95 is stable and the in-flight task count
// stays bounded.
func streamTree() *treesched.Tree {
	return treesched.FatTree(2, 2, 2).WithUniformSpeed(1.5)
}

// memProbeSource passes an arrival stream through unchanged while
// sampling the heap every streamProbeStep jobs, recording the peak.
type memProbeSource struct {
	src  treesched.ArrivalSource
	n    int
	peak uint64
}

func (p *memProbeSource) Next() (treesched.Job, bool) {
	j, ok := p.src.Next()
	if ok {
		if p.n++; p.n%streamProbeStep == 0 {
			p.sample()
		}
	}
	return j, ok
}

func (p *memProbeSource) Err() error { return p.src.Err() }

func (p *memProbeSource) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > p.peak {
		p.peak = ms.HeapAlloc
	}
}

// streamPeak runs the bounded-retention streamed kernel once at the
// given job count and reports its event count and peak heap. The
// tree runs at speed 1.5 (the resource-augmentation default): the
// constant-memory property needs a stable system — an overloaded one
// accumulates a backlog of live tasks proportional to the job count
// no matter how completions are recycled.
func streamPeak(seed uint64, jobs int) (streamMemRow, error) {
	t := streamTree()
	src, err := treesched.PoissonSource(seed+47, jobs, 0.95, t)
	if err != nil {
		return streamMemRow{}, err
	}
	probe := &memProbeSource{src: src}
	runtime.GC()
	probe.sample()
	res, err := treesched.RunStream(t, probe, treesched.NewGreedyIdentical(0.5), treesched.Options{RetainJobs: 1})
	if err != nil {
		return streamMemRow{}, err
	}
	probe.sample()
	return streamMemRow{Jobs: jobs, Events: res.Stats.Events, PeakHeapBytes: probe.peak}, nil
}

// streamSmoke is the -stream-smoke mode: assert the constant-memory
// property without timing anything. Returns the process exit code.
func streamSmoke(seed uint64) int {
	small, err := streamPeak(seed, streamJobs/10)
	if err != nil {
		fatal(err)
	}
	big, err := streamPeak(seed, streamJobs)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: stream smoke: peak heap %.1f MiB at %d jobs, %.1f MiB at %d jobs\n",
		float64(small.PeakHeapBytes)/(1<<20), small.Jobs, float64(big.PeakHeapBytes)/(1<<20), big.Jobs)
	code := 0
	if big.PeakHeapBytes > smokeCeiling {
		fmt.Fprintf(os.Stderr, "bench: stream smoke FAIL: %d-job peak %d B exceeds the %d B ceiling\n",
			big.Jobs, big.PeakHeapBytes, int64(smokeCeiling))
		code = 4
	}
	if float64(big.PeakHeapBytes) > smokeRatio*float64(small.PeakHeapBytes) {
		fmt.Fprintf(os.Stderr, "bench: stream smoke FAIL: peak heap grew %.2fx from %d to %d jobs (limit %.1fx)\n",
			float64(big.PeakHeapBytes)/float64(small.PeakHeapBytes), small.Jobs, big.Jobs, smokeRatio)
		code = 4
	}
	if code == 0 {
		fmt.Fprintln(os.Stderr, "bench: stream smoke OK: peak heap is flat in the job count")
	}
	return code
}

// fleetScenario is the fixed fleet workload shared by the
// fleet/jsq-4tree kernel and the -fleet-smoke probe: four fat trees
// behind a join-shortest-queue front door, each drawing its own
// brownout plan from its tree-scoped stream.
func fleetScenario(seed uint64) *treesched.Scenario {
	return &treesched.Scenario{
		Topology: treesched.NewSpec("fattree", 2, 2, 2),
		Workload: treesched.ScenarioWorkload{
			N: 4000, Size: treesched.NewSpec("uniform", 1, 16), ClassEps: 0.5, Load: 0.9,
		},
		Seed:   seed + 59,
		Faults: &treesched.ScenarioFaults{Plan: treesched.NewSpec("brownouts", 2, 20, 0.5)},
		Fleet:  &treesched.ScenarioFleet{Trees: 4, Policy: "jsq"},
	}
}

// fleetSmoke is the -fleet-smoke mode: assert that the worker count is
// a pure speed knob by running the same fleet key at Workers=1 and
// Workers=4 and demanding byte-identical output. Returns the process
// exit code.
func fleetSmoke(seed uint64) int {
	run := func(workers int) (card []byte, nd [][]byte) {
		res, err := treesched.RunFleet(fleetScenario(seed), treesched.FleetOptions{Workers: workers})
		if err != nil {
			fatal(err)
		}
		var cb bytes.Buffer
		if err := res.Scorecard.WriteJSON(&cb); err != nil {
			fatal(err)
		}
		for i := range res.Trees {
			var b bytes.Buffer
			if err := res.Trees[i].WriteNDJSON(&b); err != nil {
				fatal(err)
			}
			nd = append(nd, b.Bytes())
		}
		return cb.Bytes(), nd
	}
	card1, nd1 := run(1)
	card4, nd4 := run(4)
	code := 0
	if !bytes.Equal(card1, card4) {
		fmt.Fprintln(os.Stderr, "bench: fleet smoke FAIL: scorecard differs between Workers=1 and Workers=4")
		code = 5
	}
	for i := range nd1 {
		if !bytes.Equal(nd1[i], nd4[i]) {
			fmt.Fprintf(os.Stderr, "bench: fleet smoke FAIL: tree %d NDJSON differs between Workers=1 and Workers=4\n", i)
			code = 5
		}
	}
	if code == 0 {
		fmt.Fprintf(os.Stderr, "bench: fleet smoke OK: scorecard and %d trees' NDJSON byte-identical at Workers=1 and Workers=4\n", len(nd1))
	}
	return code
}

// serveBenchJobs is the serving-layer kernels' trace length, matching
// the engine/warm calibration scale.
const serveBenchJobs = 2000

// serveScenario is the serving-layer kernels' fixed scenario: the
// standard fat tree at speed 1.5 in serve mode (the workload arrives
// from outside), with bounded retention so the daemon's memory stays
// independent of the accepted job count.
func serveScenario() *treesched.Scenario {
	sc := &treesched.Scenario{
		Topology: treesched.NewSpec("fattree", 2, 2, 2),
		Speed:    treesched.ScenarioSpeed{Uniform: 1.5},
	}
	sc.Engine.Serve = true
	sc.Engine.RetainJobs = 1
	return sc
}

// serveHarness is the server kernels' shared HTTP plumbing: one
// listener and one keep-alive client reused across iterations, with
// each iteration's fresh daemon swapped in behind an atomic handler
// pointer. Production clients hold connections open across batches,
// so per-iteration TCP dials, listener churn and idle-pool eviction
// are harness cost, not serving tax — the kernels time daemon
// start, admission, the engine and drain over a warm connection. The
// bundled HTTP/2 setup is disabled on both sides (the documented
// non-nil-TLSNextProto form): these kernels speak cleartext
// HTTP/1.1, so per-daemon h2 configuration would only time stdlib
// setup the connection can never negotiate. The listener lives until
// the process exits (kernels have no teardown hook; the bench binary
// exits right after the run).
type serveHarness struct {
	hs      *httptest.Server
	client  *http.Client
	handler atomic.Pointer[http.Handler]
}

func newServeHarness() *serveHarness {
	h := &serveHarness{}
	h.hs = httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*h.handler.Load()).ServeHTTP(w, r)
	}))
	h.hs.Config.TLSNextProto = map[string]func(*http.Server, *tls.Conn, http.Handler){}
	h.hs.Start()
	h.client = &http.Client{Transport: &http.Transport{
		TLSNextProto: map[string]func(string, *tls.Conn) http.RoundTripper{},
	}}
	return h
}

// swap points the shared listener at a fresh daemon.
func (h *serveHarness) swap(hd http.Handler) { h.handler.Store(&hd) }

// serveSmoke is the -serve-smoke mode: drive a daemon into overload
// and assert the robustness contract end to end — load sheds with 429
// + Retry-After, the shed count is monotone, the heap stays bounded,
// a quiet period reopens admission, and a graceful drain completes
// every accepted job with a completion stream byte-identical to an
// offline RunStream replay of the accepted (densely re-IDed) trace.
// Returns the process exit code (6 on failure).
func serveSmoke(seed uint64) int {
	_ = seed // the probe's workload is fixed: overload dynamics, not sampling, are under test
	fail := func(format string, a ...any) int {
		fmt.Fprintf(os.Stderr, "bench: serve smoke FAIL: "+format+"\n", a...)
		return 6
	}

	// Speed-1 fat tree: root capacity 2. Unit jobs every 0.1 time
	// units offer rate 10 — hopelessly unstable, so the watermark must
	// trip. The subscriber buffer is sized past the whole run so the
	// byte-identity check cannot be voided by an overflow drop.
	sc := &treesched.Scenario{Topology: treesched.NewSpec("fattree", 2, 2, 2)}
	sc.Engine.Serve = true
	sc.Engine.RetainJobs = 1
	srv, err := treesched.NewServer(treesched.ServerConfig{
		Scenario: sc, ShedBacklog: 20, SubscriberBuffer: 4096,
	})
	if err != nil {
		fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	// Retries stays 0: resubmitting the same releases cannot drain a
	// fluid backlog, so retrying against sustained overload livelocks.
	cl := &treesched.ServerClient{Base: hs.URL}
	ctx := context.Background()

	stream, err := cl.Completions(ctx)
	if err != nil {
		fatal(err)
	}
	var got bytes.Buffer
	streamDone := make(chan struct{})
	go func() {
		io.Copy(&got, stream)
		close(streamDone)
	}()

	var accepted []treesched.Job
	shedBatches, prevShed := 0, 0
	var peak uint64
	for b := 0; b < 10; b++ {
		batch := make([]treesched.Job, 20)
		for i := range batch {
			batch[i] = treesched.Job{Release: float64(b*20+i) * 0.1, Size: 1}
		}
		res, err := cl.Submit(ctx, batch)
		if err != nil {
			fatal(err)
		}
		accepted = append(accepted, batch[:res.Accepted]...)
		if res.Shed > 0 {
			shedBatches++
		}
		st, err := cl.Stats(ctx)
		if err != nil {
			fatal(err)
		}
		if st.Shed < prevShed {
			return fail("shed count went backwards: %d -> %d", prevShed, st.Shed)
		}
		prevShed = st.Shed
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	if shedBatches == 0 {
		return fail("an offered rate 5x capacity never shed")
	}
	if peak > smokeCeiling {
		return fail("peak heap %d B under overload exceeds the %d B ceiling", peak, int64(smokeCeiling))
	}

	// The shed path itself must answer 429 with a Retry-After hint.
	resp, err := http.Post(hs.URL+"/jobs", "application/x-ndjson",
		strings.NewReader(`{"Release":19.95,"Size":1}`+"\n"))
	if err != nil {
		fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		return fail("status %d while shedding, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		return fail("429 carries no Retry-After header")
	}

	// A quiet period (much later release) drains the fluid backlog
	// below the hysteresis floor and admission reopens.
	late := []treesched.Job{{Release: 1000, Size: 1}}
	res, err := cl.Submit(ctx, late)
	if err != nil {
		fatal(err)
	}
	if res.Accepted != 1 {
		return fail("admission did not reopen after the backlog drained: accepted=%d shed=%d", res.Accepted, res.Shed)
	}
	accepted = append(accepted, late...)

	final, err := cl.Drain(ctx)
	if err != nil {
		fatal(err)
	}
	if final.Completed != len(accepted) || final.Accepted != len(accepted) {
		return fail("drain completed=%d accepted=%d, want %d (every accepted job, no shed job)",
			final.Completed, final.Accepted, len(accepted))
	}
	if final.Shed == 0 {
		return fail("final stats lost the shed count")
	}
	<-streamDone

	// Byte-identity: the accepted subset, re-IDed densely (the dense
	// IDs the daemon assigned at admission), replays through the
	// offline streaming pipeline to the same NDJSON.
	dense := make([]treesched.Job, len(accepted))
	copy(dense, accepted)
	for i := range dense {
		dense[i].ID = i
	}
	in, err := sc.Build()
	if err != nil {
		fatal(err)
	}
	var want bytes.Buffer
	opts := in.Opts
	opts.RetainJobs = 1
	opts.Sink = treesched.NewNDJSONSink(&want)
	if _, err := treesched.RunStream(in.Tree, treesched.NewTraceSource(&treesched.Trace{Jobs: dense}), in.Assigner, opts); err != nil {
		fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		return fail("daemon completions differ from the offline replay of the accepted trace (%d vs %d bytes)", got.Len(), want.Len())
	}

	// The clean-path allocation bound: on a warm, stable daemon the
	// whole serving path — NDJSON decode, batched admission, engine,
	// completion fan-out — must stay under serveAllocCeiling mallocs
	// per admitted job.
	perJob, err := serveAllocsPerJob()
	if err != nil {
		fatal(err)
	}
	if perJob > serveAllocCeiling {
		return fail("warm clean path allocates %.2f mallocs per admitted job (ceiling %.1f)", perJob, serveAllocCeiling)
	}
	fmt.Fprintf(os.Stderr, "bench: serve smoke OK: accepted %d, shed %d (429 + Retry-After), drained clean, completions byte-identical to the offline replay, warm clean path %.2f mallocs/job (ceiling %.1f)\n",
		len(accepted), final.Shed, perJob, serveAllocCeiling)
	return 0
}

// serveAllocCeiling bounds the process-wide malloc count per admitted
// job on the warm clean path (submission decode + batched admission +
// engine + fan-out, measured across one 2,000-job POST). The batched
// path runs at ~0.1 mallocs per job; the ceiling leaves slack for
// HTTP transport internals and GC-timing noise while still catching
// any per-job allocation sneaking back into the hot path.
const (
	serveAllocCeiling = 0.5
	serveAllocJobs    = 2000
)

// serveAllocsPerJob measures the warm clean path: a stable daemon
// (spaced unit jobs, no shedding) takes one warm-up submission, then
// the process-wide Mallocs delta across one serveAllocJobs-job
// submission — divided by the job count — is the per-job serving
// cost. The engine queue is polled empty before each sample so the
// measurement brackets the whole path, not just the HTTP exchange.
func serveAllocsPerJob() (float64, error) {
	sc := serveScenario()
	srv, err := treesched.NewServer(treesched.ServerConfig{
		Scenario: sc, QueueDepth: 4 * serveAllocJobs,
	})
	if err != nil {
		return 0, err
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	cl := &treesched.ServerClient{Base: hs.URL}
	ctx := context.Background()

	// Unit jobs a full time unit apart on the speed-1.5 tree: each
	// completes before the next arrives, so the system is stable and
	// every sample sees the same steady state.
	mk := func(base float64, n int) []treesched.Job {
		jobs := make([]treesched.Job, n)
		for i := range jobs {
			jobs[i] = treesched.Job{Release: base + float64(i), Size: 1}
		}
		return jobs
	}
	settle := func() error {
		deadline := time.Now().Add(10 * time.Second)
		for {
			st, err := cl.Stats(ctx)
			if err != nil {
				return err
			}
			if st.QueueLen == 0 {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("serve alloc probe: engine queue never drained (len %d)", st.QueueLen)
			}
			time.Sleep(time.Millisecond)
		}
	}
	submit := func(base float64, n int) error {
		res, err := cl.Submit(ctx, mk(base, n))
		if err != nil {
			return err
		}
		if res.Accepted != n {
			return fmt.Errorf("serve alloc probe: admitted %d of %d jobs", res.Accepted, n)
		}
		return settle()
	}

	// Warm up: first contact grows the batch pool, fan-out buffer, and
	// transport connections to steady state.
	if err := submit(0, 500); err != nil {
		return 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := submit(500, serveAllocJobs); err != nil {
		return 0, err
	}
	runtime.ReadMemStats(&after)
	if _, err := cl.Drain(ctx); err != nil {
		return 0, err
	}
	return float64(after.Mallocs-before.Mallocs) / float64(serveAllocJobs), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
