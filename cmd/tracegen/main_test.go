package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"treesched/internal/workload"
)

func exec(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestRunGeneratesTrace(t *testing.T) {
	code, out, errw := exec(t, "-n", "25", "-seed", "4")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw)
	}
	var doc struct {
		Jobs []json.RawMessage `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("stdout is not a trace: %v\n%s", err, out)
	}
	if len(doc.Jobs) != 25 {
		t.Fatalf("trace has %d jobs, want 25", len(doc.Jobs))
	}
	if !strings.Contains(errw, "25 jobs") {
		t.Fatalf("summary missing from stderr: %q", errw)
	}
}

func TestRunMissingScenarioFile(t *testing.T) {
	code, _, errw := exec(t, "-scenario", filepath.Join(t.TempDir(), "absent.json"))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errw, "absent.json") {
		t.Fatalf("stderr does not name the missing file: %q", errw)
	}
}

func TestRunMalformedScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"workload": {"siez": "uniform:1,2"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errw := exec(t, "-scenario", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errw, "siez") {
		t.Fatalf("stderr does not name the offending field: %q", errw)
	}
}

func TestRunUnknownNames(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-process", "quantum"}, `unknown process "quantum"`},
		{[]string{"-size", "zipf:1,2"}, `unknown size distribution "zipf"`},
	} {
		code, _, errw := exec(t, append(tc.args, "-n", "10")...)
		if code != 1 {
			t.Fatalf("%v: exit %d, want 1 (stderr %q)", tc.args, code, errw)
		}
		if !strings.Contains(errw, tc.want) {
			t.Fatalf("%v: stderr %q missing %q", tc.args, errw, tc.want)
		}
	}
}

func TestRunBadFlagExitsTwo(t *testing.T) {
	code, _, _ := exec(t, "-bogus")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunStreamEmitsNDJSON(t *testing.T) {
	// -stream must yield the exact same jobs as the materialized form,
	// one JSON object per line, with the same stderr summary.
	code, want, errWant := exec(t, "-n", "40", "-seed", "4")
	if code != 0 {
		t.Fatalf("materialized exit %d", code)
	}
	code, out, errw := exec(t, "-n", "40", "-seed", "4", "-stream")
	if code != 0 {
		t.Fatalf("-stream exit %d, stderr %q", code, errw)
	}
	if errw != errWant {
		t.Fatalf("stream summary diverges:\n  materialized %q\n  streamed     %q", errWant, errw)
	}
	var doc struct {
		Jobs []workload.Job `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(want), &doc); err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Collect(workload.NewNDJSONSource(strings.NewReader(out)))
	if err != nil {
		t.Fatalf("reading NDJSON back: %v", err)
	}
	if len(tr.Jobs) != len(doc.Jobs) {
		t.Fatalf("streamed %d jobs, want %d", len(tr.Jobs), len(doc.Jobs))
	}
	for i := range tr.Jobs {
		if !reflect.DeepEqual(tr.Jobs[i], doc.Jobs[i]) {
			t.Fatalf("job %d diverges:\n  materialized %+v\n  streamed     %+v", i, doc.Jobs[i], tr.Jobs[i])
		}
	}
}

func TestRunStreamBursty(t *testing.T) {
	code, out, errw := exec(t, "-n", "30", "-seed", "2", "-process", "bursty", "-burst", "5", "-stream")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw)
	}
	if got := strings.Count(strings.TrimRight(out, "\n"), "\n") + 1; got != 30 {
		t.Fatalf("NDJSON has %d lines, want 30", got)
	}
}
