// Command tracegen generates workload traces as JSON for record and
// replay across tools and experiments.
//
// Usage:
//
//	tracegen -n 1000 -process poisson -size uniform:1,16 -load 0.9 \
//	         -capacity 2 [-burst 10] [-unrelated 8:0.5,2] [-eps 0.5] \
//	         [-seed 1] -o trace.json
//	tracegen -scenario run.json -o trace.json
//	tracegen -stream -n 1000000 -o trace.ndjson
//
// -stream emits newline-delimited JSON (one job per line) drawn from
// the streaming generator, so million-job traces are written in
// constant memory; the jobs are bit-identical to the materialized
// form. workload.NDJSONSource reads the format back.
//
// Size specs: uniform:lo,hi | bimodal:small,big,pbig | pareto:min,alpha,cap.
// -eps > 0 rounds all sizes to powers of (1+eps).
// -unrelated LEAVES:lo,hi attaches per-leaf processing times.
//
// The flags assemble the workload half of a scenario.Scenario;
// -scenario loads a full scenario instead and regenerates its trace,
// and -dump-scenario prints the assembled scenario as JSON. With no
// topology the load is calibrated against -capacity (default 1).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"treesched/internal/cli"
	"treesched/internal/rng"
	"treesched/internal/scenario"
	"treesched/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process boundary, so error paths are testable:
// it returns the exit code (0 ok, 1 runtime error, 2 flag error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 1000, "number of jobs")
	process := fs.String("process", "poisson", "arrival process: poisson | bursty | adversarial")
	sizeSpec := fs.String("size", "uniform:1,16", "size distribution spec")
	load := fs.Float64("load", 0.9, "offered load")
	capacity := fs.Float64("capacity", 1, "capacity the load is calibrated against")
	burst := fs.Int("burst", 10, "burst length for -process bursty")
	eps := fs.Float64("eps", 0, "round sizes to powers of (1+eps) when > 0")
	unrelated := fs.String("unrelated", "", "LEAVES:lo,hi per-leaf sizes")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("o", "", "output file (default stdout)")
	stream := fs.Bool("stream", false, "write NDJSON (one job per line) from the streaming generator in constant memory")
	scenFile := fs.String("scenario", "", "load the scenario from this file (JSON or compact form) instead of the individual flags")
	dump := fs.Bool("dump-scenario", false, "print the scenario as JSON and exit without generating")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}

	var sc *scenario.Scenario
	if *scenFile != "" {
		data, err := os.ReadFile(*scenFile)
		if err != nil {
			return fail(err)
		}
		if sc, err = scenario.Load(data); err != nil {
			return fail(err)
		}
	} else {
		sizeSp, err := scenario.ParseSpec(*sizeSpec)
		if err != nil {
			return fail(err)
		}
		var processSp scenario.Spec
		switch *process {
		case "poisson":
			processSp = scenario.NewSpec("poisson")
		case "bursty":
			processSp = scenario.NewSpec("bursty", float64(*burst))
		case "adversarial":
			// The adversarial pattern historically used big jobs of
			// size 32.
			processSp = scenario.NewSpec("adversarial", 32)
		default:
			return fail(fmt.Errorf("unknown process %q", *process))
		}
		sc = &scenario.Scenario{
			Workload: scenario.Workload{
				Process:  processSp,
				N:        *n,
				Size:     sizeSp,
				Load:     *load,
				Capacity: *capacity,
				RoundEps: *eps,
			},
			Seed: *seed,
		}
		if *unrelated != "" {
			ucfg, err := cli.ParseUnrelated(*unrelated)
			if err != nil {
				return fail(err)
			}
			sc.Workload.Unrelated = &scenario.Unrelated{
				Lo: ucfg.Lo, Hi: ucfg.Hi, Leaves: ucfg.Leaves,
			}
		}
	}
	if *dump {
		if err := sc.WriteJSON(stdout); err != nil {
			return fail(err)
		}
		return 0
	}

	// Trace-only generation has no topology to derive capacity from.
	if sc.Workload.Capacity == 0 {
		sc.Workload.Capacity = 1
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		w = f
	}
	var st workload.TraceStats
	if *stream {
		src, err := sc.Workload.SourceFrom(rng.New(sc.Seed))
		if err != nil {
			return fail(err)
		}
		if st, err = workload.StreamNDJSON(src, w); err != nil {
			return fail(err)
		}
	} else {
		tr, err := sc.Workload.Generate(sc.Seed)
		if err != nil {
			return fail(err)
		}
		if err := tr.WriteJSON(w); err != nil {
			return fail(err)
		}
		st = tr.Stats()
	}
	fmt.Fprintf(stderr, "tracegen: %d jobs, total work %.4g, span %.4g, mean size %.4g, max size %.4g, offered %.4g/s\n",
		st.Jobs, st.TotalWork, st.Span, st.MeanSize, st.MaxSize, st.OfferedPerSec)
	return 0
}
