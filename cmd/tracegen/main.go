// Command tracegen generates workload traces as JSON for record and
// replay across tools and experiments.
//
// Usage:
//
//	tracegen -n 1000 -process poisson -size uniform:1,16 -load 0.9 \
//	         -capacity 2 [-burst 10] [-unrelated 8:0.5,2] [-eps 0.5] \
//	         [-seed 1] -o trace.json
//
// Size specs: uniform:lo,hi | bimodal:small,big,pbig | pareto:min,alpha,cap.
// -eps > 0 rounds all sizes to powers of (1+eps).
// -unrelated LEAVES:lo,hi attaches per-leaf processing times.
package main

import (
	"flag"
	"fmt"
	"os"

	"treesched/internal/cli"
	"treesched/internal/rng"
	"treesched/internal/workload"
)

func main() {
	n := flag.Int("n", 1000, "number of jobs")
	process := flag.String("process", "poisson", "arrival process: poisson | bursty | adversarial")
	sizeSpec := flag.String("size", "uniform:1,16", "size distribution spec")
	load := flag.Float64("load", 0.9, "offered load")
	capacity := flag.Float64("capacity", 1, "capacity the load is calibrated against")
	burst := flag.Int("burst", 10, "burst length for -process bursty")
	eps := flag.Float64("eps", 0, "round sizes to powers of (1+eps) when > 0")
	unrelated := flag.String("unrelated", "", "LEAVES:lo,hi per-leaf sizes")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	size, err := cli.ParseSize(*sizeSpec)
	if err != nil {
		fatal(err)
	}
	r := rng.New(*seed)
	cfg := workload.GenConfig{N: *n, Size: size, Load: *load, Capacity: *capacity}
	var tr *workload.Trace
	switch *process {
	case "poisson":
		tr, err = workload.Poisson(r, cfg)
	case "bursty":
		tr, err = workload.Bursty(r, cfg, *burst)
	case "adversarial":
		tr = workload.Adversarial(r, *n, 32)
	default:
		err = fmt.Errorf("unknown process %q", *process)
	}
	if err != nil {
		fatal(err)
	}

	if *unrelated != "" {
		ucfg, err := cli.ParseUnrelated(*unrelated)
		if err != nil {
			fatal(err)
		}
		if err := workload.MakeUnrelated(r, tr, ucfg); err != nil {
			fatal(err)
		}
	}
	if *eps > 0 {
		workload.RoundTraceToClasses(tr, *eps)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteJSON(w); err != nil {
		fatal(err)
	}
	st := tr.Stats()
	fmt.Fprintf(os.Stderr, "tracegen: %d jobs, total work %.4g, span %.4g, mean size %.4g, max size %.4g, offered %.4g/s\n",
		st.Jobs, st.TotalWork, st.Span, st.MeanSize, st.MaxSize, st.OfferedPerSec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
