// Command tracegen generates workload traces as JSON for record and
// replay across tools and experiments.
//
// Usage:
//
//	tracegen -n 1000 -process poisson -size uniform:1,16 -load 0.9 \
//	         -capacity 2 [-burst 10] [-unrelated 8:0.5,2] [-eps 0.5] \
//	         [-seed 1] -o trace.json
//	tracegen -scenario run.json -o trace.json
//
// Size specs: uniform:lo,hi | bimodal:small,big,pbig | pareto:min,alpha,cap.
// -eps > 0 rounds all sizes to powers of (1+eps).
// -unrelated LEAVES:lo,hi attaches per-leaf processing times.
//
// The flags assemble the workload half of a scenario.Scenario;
// -scenario loads a full scenario instead and regenerates its trace,
// and -dump-scenario prints the assembled scenario as JSON. With no
// topology the load is calibrated against -capacity (default 1).
package main

import (
	"flag"
	"fmt"
	"os"

	"treesched/internal/cli"
	"treesched/internal/scenario"
)

func main() {
	n := flag.Int("n", 1000, "number of jobs")
	process := flag.String("process", "poisson", "arrival process: poisson | bursty | adversarial")
	sizeSpec := flag.String("size", "uniform:1,16", "size distribution spec")
	load := flag.Float64("load", 0.9, "offered load")
	capacity := flag.Float64("capacity", 1, "capacity the load is calibrated against")
	burst := flag.Int("burst", 10, "burst length for -process bursty")
	eps := flag.Float64("eps", 0, "round sizes to powers of (1+eps) when > 0")
	unrelated := flag.String("unrelated", "", "LEAVES:lo,hi per-leaf sizes")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	scenFile := flag.String("scenario", "", "load the scenario from this file (JSON or compact form) instead of the individual flags")
	dump := flag.Bool("dump-scenario", false, "print the scenario as JSON and exit without generating")
	flag.Parse()

	var sc *scenario.Scenario
	if *scenFile != "" {
		data, err := os.ReadFile(*scenFile)
		if err != nil {
			fatal(err)
		}
		if sc, err = scenario.Load(data); err != nil {
			fatal(err)
		}
	} else {
		sizeSp, err := scenario.ParseSpec(*sizeSpec)
		if err != nil {
			fatal(err)
		}
		var processSp scenario.Spec
		switch *process {
		case "poisson":
			processSp = scenario.NewSpec("poisson")
		case "bursty":
			processSp = scenario.NewSpec("bursty", float64(*burst))
		case "adversarial":
			// The adversarial pattern historically used big jobs of
			// size 32.
			processSp = scenario.NewSpec("adversarial", 32)
		default:
			fatal(fmt.Errorf("unknown process %q", *process))
		}
		sc = &scenario.Scenario{
			Workload: scenario.Workload{
				Process:  processSp,
				N:        *n,
				Size:     sizeSp,
				Load:     *load,
				Capacity: *capacity,
				RoundEps: *eps,
			},
			Seed: *seed,
		}
		if *unrelated != "" {
			ucfg, err := cli.ParseUnrelated(*unrelated)
			if err != nil {
				fatal(err)
			}
			sc.Workload.Unrelated = &scenario.Unrelated{
				Lo: ucfg.Lo, Hi: ucfg.Hi, Leaves: ucfg.Leaves,
			}
		}
	}
	if *dump {
		if err := sc.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	// Trace-only generation has no topology to derive capacity from.
	if sc.Workload.Capacity == 0 {
		sc.Workload.Capacity = 1
	}
	tr, err := sc.Workload.Generate(sc.Seed)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteJSON(w); err != nil {
		fatal(err)
	}
	st := tr.Stats()
	fmt.Fprintf(os.Stderr, "tracegen: %d jobs, total work %.4g, span %.4g, mean size %.4g, max size %.4g, offered %.4g/s\n",
		st.Jobs, st.TotalWork, st.Span, st.MeanSize, st.MaxSize, st.OfferedPerSec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
