package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exec runs the command and returns (exit code, stdout, stderr).
func exec(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestRunHappyPath(t *testing.T) {
	code, out, errw := exec(t, "-topo", "star:4", "-n", "50", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw)
	}
	for _, want := range []string{"topology", "total flow", "competitive ratio"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunFaultyScenario(t *testing.T) {
	code, out, errw := exec(t,
		"-topo", "fattree:2,2,2", "-n", "80", "-seed", "7",
		"-faults", "leafloss:2,0.3", "-recovery", "redispatch")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw)
	}
	if !strings.Contains(out, "faults          2 events, redispatch recovery") {
		t.Fatalf("report missing fault line:\n%s", out)
	}
}

func TestRunAuditFlag(t *testing.T) {
	code, out, errw := exec(t,
		"-topo", "fattree:2,2,2", "-n", "80", "-seed", "7",
		"-faults", "outages:3,20", "-audit")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw)
	}
	if !strings.Contains(out, "audit           OK") {
		t.Fatalf("report missing audit line:\n%s", out)
	}
}

func TestRunAuditRejectsPS(t *testing.T) {
	code, _, errw := exec(t, "-topo", "star:4", "-n", "20", "-policy", "ps", "-audit")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errw, "no discrete slices") {
		t.Fatalf("stderr %q missing PS explanation", errw)
	}
}

func TestRunMissingScenarioFile(t *testing.T) {
	code, _, errw := exec(t, "-scenario", filepath.Join(t.TempDir(), "absent.json"))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errw, "absent.json") {
		t.Fatalf("stderr does not name the missing file: %q", errw)
	}
}

func TestRunMalformedScenarioJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"topology": "star:4", "wokload": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errw := exec(t, "-scenario", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errw, "wokload") {
		t.Fatalf("stderr does not name the offending field: %q", errw)
	}
}

func TestRunUnknownRegistryNames(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-topo", "moebius:3"}, `unknown topology "moebius"`},
		{[]string{"-topo", "star:4", "-policy", "fancy"}, `unknown policy "fancy"`},
		{[]string{"-topo", "star:4", "-assigner", "psychic"}, `unknown assigner "psychic"`},
		{[]string{"-topo", "star:4", "-faults", "meteor:3"}, `unknown fault plan "meteor"`},
		{[]string{"-topo", "star:4", "-faults", "outages:2,5", "-recovery", "pray"}, `unknown faults.recovery "pray"`},
		{[]string{"-topo", "star:4", "-recovery", "hold"}, "-recovery needs -faults"},
	} {
		code, _, errw := exec(t, append(tc.args, "-n", "20")...)
		if code != 1 {
			t.Fatalf("%v: exit %d, want 1 (stderr %q)", tc.args, code, errw)
		}
		if !strings.Contains(errw, tc.want) {
			t.Fatalf("%v: stderr %q missing %q", tc.args, errw, tc.want)
		}
	}
}

func TestRunBadFlagExitsTwo(t *testing.T) {
	code, _, _ := exec(t, "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunDumpScenarioIncludesFaults(t *testing.T) {
	code, out, errw := exec(t,
		"-topo", "star:4", "-n", "20", "-faults", "outages:3,10", "-dump-scenario")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw)
	}
	if !strings.Contains(out, `"plan": "outages:3,10"`) {
		t.Fatalf("dump missing fault plan:\n%s", out)
	}
}

func TestRunShardsFlag(t *testing.T) {
	// The sharded engine is a pure speed knob: every worker count must
	// print the exact same report, and 0 means auto (GOMAXPROCS).
	base := []string{"-topo", "fattree:4,1,2", "-n", "80", "-seed", "5"}
	code, want, errw := exec(t, base...)
	if code != 0 {
		t.Fatalf("baseline exit %d, stderr %q", code, errw)
	}
	for _, extra := range [][]string{
		{"-shards", "0"},
		{"-shards", "4"},
		{"-parallel", "3"},
	} {
		code, out, errw := exec(t, append(append([]string{}, base...), extra...)...)
		if code != 0 {
			t.Fatalf("%v: exit %d, stderr %q", extra, code, errw)
		}
		if out != want {
			t.Fatalf("%v: report diverges from sequential run:\n%s", extra, out)
		}
	}
}

func TestRunShardsRejectsNegative(t *testing.T) {
	code, _, errw := exec(t, "-topo", "star:4", "-n", "20", "-shards", "-2")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errw)
	}
	if !strings.Contains(errw, "-shards") || !strings.Contains(errw, "negative") {
		t.Fatalf("stderr %q does not explain the bad worker count", errw)
	}
	if code, _, _ := exec(t, "-topo", "star:4", "-n", "20", "-shards", "two"); code != 2 {
		t.Fatalf("non-numeric -shards: exit %d, want 2", code)
	}
}

func TestRunShardsOverridesScenarioFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.txt")
	if err := os.WriteFile(path, []byte("topo=star:4 n=40 size=uniform:1,8 load=0.8 seed=9 shards=2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, want, errw := exec(t, "-scenario", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw)
	}
	code, out, errw := exec(t, "-scenario", path, "-shards", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw)
	}
	if out != want {
		t.Fatalf("-shards override changed the report:\n%s", out)
	}
}

func TestRunStreamFlagMatchesMaterialized(t *testing.T) {
	// The streaming pipeline is bit-identical; only the lower-bound
	// line (which needs the materialized trace) may differ.
	base := []string{"-topo", "fattree:2,2,2", "-n", "200", "-seed", "11"}
	code, want, errw := exec(t, base...)
	if code != 0 {
		t.Fatalf("baseline exit %d, stderr %q", code, errw)
	}
	code, out, errw := exec(t, append(append([]string{}, base...), "-stream")...)
	if code != 0 {
		t.Fatalf("-stream exit %d, stderr %q", code, errw)
	}
	if !strings.Contains(out, "OPT lower bound n/a") {
		t.Fatalf("streamed report should mark the lower bound n/a:\n%s", out)
	}
	strip := func(s string) string {
		var kept []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, "OPT lower bound") {
				kept = append(kept, line)
			}
		}
		return strings.Join(kept, "\n")
	}
	if strip(out) != strip(want) {
		t.Fatalf("streamed report diverges from materialized run:\n--- materialized\n%s\n--- streamed\n%s", want, out)
	}
}

func TestRunRetainSummaryAndResult(t *testing.T) {
	path := filepath.Join(t.TempDir(), "res.ndjson")
	code, out, errw := exec(t, "-topo", "star:4", "-n", "300", "-seed", "2",
		"-stream", "-retain", "10", "-result", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw)
	}
	if !strings.Contains(out, "10 of 300 jobs retained") {
		t.Fatalf("report missing retention note:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 301 {
		t.Fatalf("result has %d lines, want 300 job lines + stats trailer", len(lines))
	}
	if !strings.Contains(lines[300], `"stats"`) {
		t.Fatalf("last line is not the stats trailer: %s", lines[300])
	}
}

func TestRunRetainRejectsIntrospectionFlags(t *testing.T) {
	for _, extra := range []string{"-audit", "-gantt", "-checklemmas"} {
		code, _, errw := exec(t, "-topo", "star:4", "-n", "20", "-retain", "5", extra)
		if code != 1 {
			t.Fatalf("%s: exit %d, want 1 (stderr %q)", extra, code, errw)
		}
		if !strings.Contains(errw, "-retain") {
			t.Fatalf("%s: stderr %q does not blame -retain", extra, errw)
		}
	}
}

func TestRunStreamRejectsTraceOut(t *testing.T) {
	code, _, errw := exec(t, "-topo", "star:4", "-n", "20", "-stream",
		"-trace", filepath.Join(t.TempDir(), "t.json"))
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errw)
	}
	if !strings.Contains(errw, "never materialized") {
		t.Fatalf("stderr %q does not explain the missing trace", errw)
	}
}

func TestRunStreamOverridesScenarioFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.txt")
	if err := os.WriteFile(path, []byte("topo=star:4 n=40 size=uniform:1,8 load=0.8 seed=9 stream retain=5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errw := exec(t, "-scenario", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw)
	}
	if !strings.Contains(out, "5 of 40 jobs retained") {
		t.Fatalf("scenario file streaming knobs ignored:\n%s", out)
	}
	// -retain 0 on the command line restores full retention.
	code, out, errw = exec(t, "-scenario", path, "-retain", "0")
	if code != 0 {
		t.Fatalf("override exit %d, stderr %q", code, errw)
	}
	if strings.Contains(out, "jobs retained") {
		t.Fatalf("-retain 0 override did not restore full retention:\n%s", out)
	}
}

func TestRunFleet(t *testing.T) {
	card := filepath.Join(t.TempDir(), "card.json")
	code, out, errw := exec(t,
		"-topo", "fattree:2,2,2", "-n", "200", "-seed", "5",
		"-fleet", "3", "-fleetpolicy", "jsq", "-faults", "brownouts:2,10,0.5",
		"-scorecard", card)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw)
	}
	for _, want := range []string{"fleet           3 trees, policy jsq", "front door      200 jobs routed", "tree 0", "tree 2", "total flow"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet report missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(card)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"per_tree\"") {
		t.Fatalf("scorecard JSON missing per_tree rows:\n%s", data)
	}
}

func TestRunFleetFromScenarioFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.txt")
	if err := os.WriteFile(path, []byte("topo=star:4 n=60 size=uniform:1,8 load=0.8 seed=9 fleet=2 fleetpolicy=rr\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errw := exec(t, "-scenario", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw)
	}
	if !strings.Contains(out, "fleet           2 trees, policy rr") {
		t.Fatalf("scenario file fleet section ignored:\n%s", out)
	}
}

func TestRunFleetRejectsSingleTreeReports(t *testing.T) {
	code, _, errw := exec(t, "-topo", "star:4", "-n", "20", "-fleet", "2", "-gantt")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errw)
	}
	if !strings.Contains(errw, "single-tree report") {
		t.Fatalf("stderr %q does not explain the conflict", errw)
	}
}

func TestRunFleetPolicyNeedsFleet(t *testing.T) {
	code, _, errw := exec(t, "-topo", "star:4", "-n", "20", "-fleetpolicy", "jsq")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errw)
	}
	if !strings.Contains(errw, "-fleetpolicy needs -fleet") {
		t.Fatalf("stderr %q does not explain the missing -fleet", errw)
	}
}
