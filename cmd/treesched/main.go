// Command treesched runs one simulation of the tree network
// scheduling model and reports flow-time metrics.
//
// Usage:
//
//	treesched -topo fattree:2,2,2 -n 2000 -load 0.9 -assigner greedy \
//	          -policy sjf -speed 1.5 -eps 0.5 -seed 1 [-unrelated]
//	          [-render] [-gantt] [-trace jobs.json]
//	treesched -scenario run.json            # or a compact one-liner file
//	treesched -topo star:4 -n 500 -dump-scenario > run.json
//
// The individual flags assemble a scenario.Scenario; -scenario loads
// one from a file (JSON or the compact one-line form) instead, and
// -dump-scenario prints the assembled scenario as JSON without
// running it.
//
// Topologies: fattree:arity,depth,leaves | star:n | line:n |
// caterpillar:spine,leaves | broomstick:branches,handle,leaves |
// random:branches,maxdepth,maxchildren.
// Assigners: greedy | shadow | closest | random | roundrobin |
// leastvolume | minpath | jsq.
// Policies: sjf | fifo | srpt | lcfs | ps | wsjf.
package main

import (
	"flag"
	"fmt"
	"os"

	"treesched/internal/core"
	"treesched/internal/lowerbound"
	"treesched/internal/metrics"
	"treesched/internal/scenario"
	"treesched/internal/trace"
)

func main() {
	topo := flag.String("topo", "fattree:2,2,2", "topology spec")
	n := flag.Int("n", 2000, "number of jobs")
	load := flag.Float64("load", 0.9, "offered load vs root capacity")
	assigner := flag.String("assigner", "greedy", "leaf assignment policy")
	policy := flag.String("policy", "sjf", "node scheduling policy")
	speed := flag.Float64("speed", 1.5, "uniform node speed (resource augmentation)")
	eps := flag.Float64("eps", 0.5, "greedy rule epsilon / size class base-1")
	seed := flag.Uint64("seed", 1, "random seed")
	unrelated := flag.Bool("unrelated", false, "unrelated leaf processing times")
	packetized := flag.Bool("packetized", false, "unit-packet forwarding mode")
	render := flag.Bool("render", false, "print the topology before running")
	dot := flag.String("dot", "", "write the topology as Graphviz dot to this file")
	checkLemmas := flag.Bool("checklemmas", false, "validate Lemma 1/2 bounds during the run (with the individual flags, forces the lemma speed profile: 1x root-adjacent, (1+eps)x elsewhere)")
	gantt := flag.Bool("gantt", false, "print an ASCII Gantt chart (instrumented)")
	traceOut := flag.String("trace", "", "write the generated workload trace to this JSON file")
	resultOut := flag.String("result", "", "write per-job results to this JSON file")
	scenFile := flag.String("scenario", "", "load the scenario from this file (JSON or compact form) instead of the individual flags")
	dump := flag.Bool("dump-scenario", false, "print the scenario as JSON and exit without running")
	flag.Parse()

	var sc *scenario.Scenario
	if *scenFile != "" {
		data, err := os.ReadFile(*scenFile)
		if err != nil {
			fatal(err)
		}
		if sc, err = scenario.Load(data); err != nil {
			fatal(err)
		}
	} else {
		topoSpec, err := scenario.ParseSpec(*topo)
		if err != nil {
			fatal(err)
		}
		sc = &scenario.Scenario{
			Topology: topoSpec,
			Workload: scenario.Workload{
				N:        *n,
				Size:     scenario.NewSpec("uniform", 1, 16),
				ClassEps: *eps,
				Load:     *load,
			},
			Policy:   *policy,
			Assigner: *assigner,
			Eps:      *eps,
			Seed:     *seed,
			Engine: scenario.Engine{
				Packetized: *packetized,
				Instrument: *gantt || *checkLemmas,
			},
		}
		if *unrelated {
			sc.Workload.Unrelated = &scenario.Unrelated{Lo: 0.5, Hi: 2}
			sc.Workload.RoundEps = *eps
		}
		if *checkLemmas {
			// Lemmas 1-2 assume speed 1 on root-adjacent nodes and at
			// least 1+eps elsewhere.
			sc.Speed = scenario.Speed{RootAdjacent: 1, Router: 1 + *eps, Leaf: 1 + *eps}
		} else {
			sc.Speed = scenario.Speed{Uniform: *speed}
		}
	}
	if *dump {
		if err := sc.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	in, err := sc.Build()
	if err != nil {
		fatal(err)
	}
	if *render {
		fmt.Print(trace.RenderTree(in.Base))
	}
	if *dot != "" {
		if err := os.WriteFile(*dot, []byte(trace.DOT(in.Base)), 0o644); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := in.Trace.WriteJSON(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	var lemma2 *core.Lemma2Checker
	if *checkLemmas {
		in.Opts.Instrument = true
		lemma2 = &core.Lemma2Checker{Eps: sc.EffEps(), Unrelated: sc.Workload.Heterogeneous(), SampleStride: 5}
		in.Opts.Observer = lemma2.Observe
	}
	if *gantt {
		in.Opts.Instrument = true
	}
	res, err := in.Run()
	if err != nil {
		fatal(err)
	}

	lb := lowerbound.Best(in.Tree, in.Trace)
	sum := metrics.FlowSummary(res)
	fmt.Printf("topology        %s (%d nodes, %d machines)\n", sc.Topology, in.Tree.NumNodes(), len(in.Tree.Leaves()))
	fmt.Printf("workload        %d jobs, load %.2f, seed %d\n", sc.Workload.N, sc.Workload.Load, sc.Seed)
	fmt.Printf("scheduler       %s + %s, speed %.2f\n", in.Assigner.Name(), in.Opts.Policy.Name(), printedSpeed(sc, *scenFile == "", *speed))
	fmt.Printf("total flow      %.4g\n", res.Stats.TotalFlow)
	fmt.Printf("fractional flow %.4g\n", res.Stats.FracFlow)
	fmt.Printf("flow/job        %s\n", sum)
	fmt.Printf("makespan        %.4g, events %d\n", res.Stats.Makespan, res.Stats.Events)
	fmt.Printf("OPT lower bound %.4g  =>  competitive ratio <= %.3f\n", lb, res.Stats.TotalFlow/lb)
	b := metrics.Bottleneck(res)
	fmt.Printf("bottleneck      node %d at %.1f%% busy\n", b.Node, 100*b.Busy)
	if *checkLemmas {
		rep1 := core.CheckLemma1(res, sc.EffEps(), sc.Workload.Heterogeneous())
		fmt.Printf("Lemma 1         %d jobs, max ratio %.4f, violations %d\n", rep1.Jobs, rep1.MaxRatio, rep1.Violations)
		fmt.Printf("Lemma 2         %d checks, max ratio %.4f, violations %d\n", lemma2.Checks, lemma2.MaxRatio, lemma2.Violations)
	}
	if *gantt {
		fmt.Println()
		fmt.Print(trace.Gantt(res, 100))
	}
	if *resultOut != "" {
		f, err := os.Create(*resultOut)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// printedSpeed preserves the historical report line: the flag path
// always printed the -speed value (even under -checklemmas, which
// overrides the profile); scenario files print their own profile's
// uniform speed, or the router speed of a per-level triple.
func printedSpeed(sc *scenario.Scenario, fromFlags bool, speedFlag float64) float64 {
	if fromFlags {
		return speedFlag
	}
	switch {
	case sc.Speed.Uniform != 0:
		return sc.Speed.Uniform
	case sc.Speed.Router != 0:
		return sc.Speed.Router
	default:
		return 1
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "treesched:", err)
	os.Exit(1)
}
