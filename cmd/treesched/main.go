// Command treesched runs one simulation of the tree network
// scheduling model and reports flow-time metrics.
//
// Usage:
//
//	treesched -topo fattree:2,2,2 -n 2000 -load 0.9 -assigner greedy \
//	          -policy sjf -speed 1.5 -eps 0.5 -seed 1 [-unrelated]
//	          [-faults outages:4,50] [-recovery redispatch] [-audit]
//	          [-shards 0] [-split 8] [-render] [-gantt] [-trace jobs.json]
//	          [-stream] [-retain 1000]
//	treesched -scenario run.json            # or a compact one-liner file
//	treesched -topo star:4 -n 500 -dump-scenario > run.json
//	treesched -topo fattree:2,2,2 -n 4000 -fleet 4 -fleetpolicy jsq \
//	          [-faults brownouts:2,20,0.5] [-scorecard card.json]
//
// The individual flags assemble a scenario.Scenario; -scenario loads
// one from a file (JSON or the compact one-line form) instead, and
// -dump-scenario prints the assembled scenario as JSON without
// running it. -faults/-recovery apply to either path (they override a
// scenario file's fault section).
//
// Topologies: fattree:arity,depth,leaves | star:n | line:n |
// caterpillar:spine,leaves | broomstick:branches,handle,leaves |
// random:branches,maxdepth,maxchildren.
// Assigners: greedy | shadow | closest | random | roundrobin |
// leastvolume | minpath | jsq.
// Policies: sjf | fifo | srpt | lcfs | ps | wsjf.
// Fault plans: outages:count,dur | brownouts:count,dur,factor |
// leafloss:count,frac.
//
// -fleet N runs N copies of the tree (or a scenario's fleet section)
// behind a front-door router instead of a single instance; fault
// plans are then drawn independently per tree. Fleet routing
// policies: rr | jsq | local.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"treesched/internal/core"
	"treesched/internal/fleet"
	"treesched/internal/lowerbound"
	"treesched/internal/metrics"
	"treesched/internal/scenario"
	"treesched/internal/sim"
	"treesched/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process boundary, so error paths are testable:
// it returns the exit code (0 ok, 1 runtime error, 2 flag error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("treesched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	topo := fs.String("topo", "fattree:2,2,2", "topology spec")
	n := fs.Int("n", 2000, "number of jobs")
	load := fs.Float64("load", 0.9, "offered load vs root capacity")
	assigner := fs.String("assigner", "greedy", "leaf assignment policy")
	policy := fs.String("policy", "sjf", "node scheduling policy")
	speed := fs.Float64("speed", 1.5, "uniform node speed (resource augmentation)")
	eps := fs.Float64("eps", 0.5, "greedy rule epsilon / size class base-1")
	seed := fs.Uint64("seed", 1, "random seed")
	unrelated := fs.Bool("unrelated", false, "unrelated leaf processing times")
	packetized := fs.Bool("packetized", false, "unit-packet forwarding mode")
	render := fs.Bool("render", false, "print the topology before running")
	dot := fs.String("dot", "", "write the topology as Graphviz dot to this file")
	checkLemmas := fs.Bool("checklemmas", false, "validate Lemma 1/2 bounds during the run (with the individual flags, forces the lemma speed profile: 1x root-adjacent, (1+eps)x elsewhere)")
	gantt := fs.Bool("gantt", false, "print an ASCII Gantt chart (instrumented)")
	audit := fs.Bool("audit", false, "record exact slices and audit the finished schedule for conformance")
	faultSpec := fs.String("faults", "", "fault plan spec (outages:count,dur | brownouts:count,dur,factor | leafloss:count,frac)")
	recovery := fs.String("recovery", "", "leaf-loss recovery policy: hold | redispatch")
	traceOut := fs.String("trace", "", "write the generated workload trace to this JSON file")
	resultOut := fs.String("result", "", "write per-job results to this JSON file (NDJSON for streamed or very large runs)")
	stream := fs.Bool("stream", false, "run through the streaming pipeline: generated workloads are drawn one job at a time and never materialized (results are identical)")
	retain := fs.Int("retain", 0, "keep only the last N per-job records and recycle engine state at each completion: memory becomes independent of -n (0 = keep all)")
	scenFile := fs.String("scenario", "", "load the scenario from this file (JSON or compact form) instead of the individual flags")
	dump := fs.Bool("dump-scenario", false, "print the scenario as JSON and exit without running")
	fleetN := fs.Int("fleet", 0, "run a fleet of N tree instances behind a front-door router (0 = single tree)")
	fleetPolicy := fs.String("fleetpolicy", "", "cross-tree routing policy: rr | jsq | local (implies -fleet with a scenario fleet section)")
	fleetWorkers := fs.Int("fleetworkers", 0, "trees simulated concurrently in a fleet run (0 = auto; results identical at any value)")
	scorecardOut := fs.String("scorecard", "", "write the fleet scorecard as JSON to this file")
	var shards int
	const shardsHelp = "subtree-shard worker count: 0 = auto (GOMAXPROCS), 1 = sequential (results are identical either way)"
	fs.IntVar(&shards, "shards", 1, shardsHelp)
	fs.IntVar(&shards, "parallel", 1, shardsHelp+" (alias of -shards)")
	split := fs.Int("split", 0, "split root-child subtrees with more than this many leaves into per-child sub-shards (0 = off; per-job metrics exact, aggregate integrals may drift in the last ulps)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "treesched:", err)
		return 1
	}
	if shards < 0 {
		return fail(fmt.Errorf("-shards: worker count %d is negative (0 = auto, 1 = sequential)", shards))
	}
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	// Whether -shards/-parallel (and the streaming knobs) were given
	// explicitly decides if they override a scenario file's engine
	// settings.
	shardsSet, splitSet, streamSet, retainSet := false, false, false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "shards", "parallel":
			shardsSet = true
		case "split":
			splitSet = true
		case "stream":
			streamSet = true
		case "retain":
			retainSet = true
		}
	})

	var sc *scenario.Scenario
	if *scenFile != "" {
		data, err := os.ReadFile(*scenFile)
		if err != nil {
			return fail(err)
		}
		if sc, err = scenario.Load(data); err != nil {
			return fail(err)
		}
		if shardsSet {
			sc.Engine.Shards = shards
		}
		if splitSet {
			sc.Engine.Split = *split
		}
		if streamSet {
			sc.Engine.Stream = *stream
		}
		if retainSet {
			sc.Engine.RetainJobs = *retain
		}
	} else {
		topoSpec, err := scenario.ParseSpec(*topo)
		if err != nil {
			return fail(err)
		}
		sc = &scenario.Scenario{
			Topology: topoSpec,
			Workload: scenario.Workload{
				N:        *n,
				Size:     scenario.NewSpec("uniform", 1, 16),
				ClassEps: *eps,
				Load:     *load,
			},
			Policy:   *policy,
			Assigner: *assigner,
			Eps:      *eps,
			Seed:     *seed,
			Engine: scenario.Engine{
				Packetized: *packetized,
				Instrument: *gantt || *checkLemmas,
				Shards:     shards,
				Split:      *split,
				Stream:     *stream,
				RetainJobs: *retain,
			},
		}
		if *unrelated {
			sc.Workload.Unrelated = &scenario.Unrelated{Lo: 0.5, Hi: 2}
			sc.Workload.RoundEps = *eps
		}
		if *checkLemmas {
			// Lemmas 1-2 assume speed 1 on root-adjacent nodes and at
			// least 1+eps elsewhere.
			sc.Speed = scenario.Speed{RootAdjacent: 1, Router: 1 + *eps, Leaf: 1 + *eps}
		} else {
			sc.Speed = scenario.Speed{Uniform: *speed}
		}
	}
	if *faultSpec != "" {
		plan, err := scenario.ParseSpec(*faultSpec)
		if err != nil {
			return fail(fmt.Errorf("-faults: %v", err))
		}
		sc.Faults = &scenario.FaultSpec{Plan: plan}
	}
	if *recovery != "" {
		if sc.Faults == nil {
			return fail(fmt.Errorf("-recovery needs -faults (or a scenario with a fault section)"))
		}
		sc.Faults.Recovery = *recovery
	}
	if *fleetN > 0 {
		if sc.Fleet == nil {
			sc.Fleet = &scenario.FleetSpec{}
		}
		sc.Fleet.Trees = *fleetN
	}
	if *fleetPolicy != "" {
		if sc.Fleet == nil {
			return fail(fmt.Errorf("-fleetpolicy needs -fleet (or a scenario with a fleet section)"))
		}
		sc.Fleet.Policy = *fleetPolicy
	}
	if sc.Engine.RetainJobs > 0 {
		// Bounded retention discards the per-task state these reports
		// are built from (full slice/task introspection, per-job lemma
		// ratios).
		switch {
		case *audit:
			return fail(fmt.Errorf("-audit needs full task retention (drop -retain)"))
		case *gantt:
			return fail(fmt.Errorf("-gantt needs full task retention (drop -retain)"))
		case *checkLemmas:
			return fail(fmt.Errorf("-checklemmas needs full per-job retention (drop -retain)"))
		}
	}
	if *dump {
		if err := sc.WriteJSON(stdout); err != nil {
			return fail(err)
		}
		return 0
	}
	if sc.Fleet != nil {
		singleTree := []struct {
			name string
			set  bool
		}{
			{"-render", *render}, {"-gantt", *gantt}, {"-audit", *audit},
			{"-checklemmas", *checkLemmas}, {"-trace", *traceOut != ""},
			{"-result", *resultOut != ""}, {"-dot", *dot != ""},
		}
		for _, f := range singleTree {
			if f.set {
				return fail(fmt.Errorf("%s is a single-tree report (drop it for fleet runs)", f.name))
			}
		}
		return runFleet(sc, *fleetWorkers, *scorecardOut, stdout, fail)
	}

	in, err := sc.Build()
	if err != nil {
		return fail(err)
	}
	if *render {
		fmt.Fprint(stdout, trace.RenderTree(in.Base))
	}
	if *dot != "" {
		if err := os.WriteFile(*dot, []byte(trace.DOT(in.Base)), 0o644); err != nil {
			return fail(err)
		}
	}
	if *traceOut != "" {
		if in.Trace == nil {
			return fail(fmt.Errorf("-trace: a streamed workload is never materialized (use tracegen -stream, or drop -stream)"))
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			return fail(err)
		}
		if err := in.Trace.WriteJSON(f); err != nil {
			return fail(err)
		}
		f.Close()
	}

	var lemma2 *core.Lemma2Checker
	if *checkLemmas {
		in.Opts.Instrument = true
		lemma2 = &core.Lemma2Checker{Eps: sc.EffEps(), Unrelated: sc.Workload.Heterogeneous(), SampleStride: 5}
		in.Opts.Observer = lemma2.Observe
	}
	if *gantt {
		in.Opts.Instrument = true
	}
	if *audit {
		if sc.Policy == "ps" {
			return fail(fmt.Errorf("-audit: processor sharing has no discrete slices to audit"))
		}
		in.Opts.Instrument = true
		in.Opts.RecordSlices = true
	}
	// Under bounded retention the Result only holds the last -retain
	// jobs, so -result streams every completion to disk as NDJSON
	// during the run instead of dumping afterwards.
	var resultFile *os.File
	var resultBuf *bufio.Writer
	if *resultOut != "" && sc.Engine.RetainJobs > 0 {
		f, err := os.Create(*resultOut)
		if err != nil {
			return fail(err)
		}
		resultFile, resultBuf = f, bufio.NewWriter(f)
		in.Opts.Sink = sim.NewNDJSONSink(resultBuf)
	}
	res, err := in.Run()
	if err != nil {
		if resultFile != nil {
			resultFile.Close()
		}
		return fail(err)
	}

	fmt.Fprintf(stdout, "topology        %s (%d nodes, %d machines)\n", sc.Topology, in.Tree.NumNodes(), len(in.Tree.Leaves()))
	fmt.Fprintf(stdout, "workload        %d jobs, load %.2f, seed %d\n", sc.Workload.N, sc.Workload.Load, sc.Seed)
	fmt.Fprintf(stdout, "scheduler       %s + %s, speed %.2f\n", in.Assigner.Name(), in.Opts.Policy.Name(), printedSpeed(sc, *scenFile == "", *speed))
	if in.FaultPlan != nil {
		rec := sc.Faults.Recovery
		if rec == "" {
			rec = "hold"
		}
		fmt.Fprintf(stdout, "faults          %d events, %s recovery, %d migrations\n",
			len(in.FaultPlan.Events), rec, len(res.Sim.Migrations()))
	}
	if *audit {
		// Drain already ran the auditor (instrumented + recorded
		// slices) and would have failed on any violation; report the
		// coverage explicitly.
		rep := res.Sim.Audit()
		status := "OK"
		if !rep.OK() {
			status = fmt.Sprintf("%d violations", len(rep.Violations))
		}
		fmt.Fprintf(stdout, "audit           %s, %d slices over %d tasks\n", status, rep.Slices, rep.Tasks)
	}
	fmt.Fprintf(stdout, "total flow      %.4g\n", res.Stats.TotalFlow)
	fmt.Fprintf(stdout, "fractional flow %.4g\n", res.Stats.FracFlow)
	if res.Stream != nil && len(res.Jobs) != res.Stream.Completed {
		// Bounded retention: the per-job record is truncated, so the
		// summary comes from the online accumulator instead.
		fmt.Fprintf(stdout, "flow/job        mean %.4g  l2 %.4g  max %.4g (streamed; %d of %d jobs retained)\n",
			res.Stream.AvgFlow(), res.Stream.LkNormFlow(2), res.Stream.MaxFlow, len(res.Jobs), res.Stream.Completed)
	} else {
		fmt.Fprintf(stdout, "flow/job        %s\n", metrics.FlowSummary(res))
	}
	fmt.Fprintf(stdout, "makespan        %.4g, events %d\n", res.Stats.Makespan, res.Stats.Events)
	if in.Trace != nil {
		lb := lowerbound.Best(in.Tree, in.Trace)
		fmt.Fprintf(stdout, "OPT lower bound %.4g  =>  competitive ratio <= %.3f\n", lb, res.Stats.TotalFlow/lb)
	} else {
		fmt.Fprintf(stdout, "OPT lower bound n/a (streamed workload is never materialized)\n")
	}
	b := metrics.Bottleneck(res)
	fmt.Fprintf(stdout, "bottleneck      node %d at %.1f%% busy\n", b.Node, 100*b.Busy)
	if *checkLemmas {
		rep1 := core.CheckLemma1(res, sc.EffEps(), sc.Workload.Heterogeneous())
		fmt.Fprintf(stdout, "Lemma 1         %d jobs, max ratio %.4f, violations %d\n", rep1.Jobs, rep1.MaxRatio, rep1.Violations)
		fmt.Fprintf(stdout, "Lemma 2         %d checks, max ratio %.4f, violations %d\n", lemma2.Checks, lemma2.MaxRatio, lemma2.Violations)
	}
	if *gantt {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, trace.Gantt(res, 100))
	}
	switch {
	case resultFile != nil:
		// Per-job lines were emitted by the sink during the run; finish
		// with one trailer line carrying the summary.
		enc := json.NewEncoder(resultBuf)
		trailer := struct {
			Stats  sim.Stats        `json:"stats"`
			Stream *sim.StreamStats `json:"stream,omitempty"`
		}{res.Stats, res.Stream}
		if err := enc.Encode(trailer); err != nil {
			return fail(err)
		}
		if err := resultBuf.Flush(); err != nil {
			return fail(err)
		}
		if err := resultFile.Close(); err != nil {
			return fail(err)
		}
	case *resultOut != "":
		f, err := os.Create(*resultOut)
		if err != nil {
			return fail(err)
		}
		// One giant JSON document stops being practical long before a
		// million jobs; switch to the streaming NDJSON form.
		write := res.WriteJSON
		if len(res.Jobs) >= 100000 {
			write = res.WriteNDJSON
		}
		if err := write(f); err != nil {
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
	}
	return 0
}

// runFleet executes a fleet scenario and prints the scorecard as a
// per-tree table plus fleet totals.
func runFleet(sc *scenario.Scenario, workers int, scorecardOut string, stdout io.Writer, fail func(error) int) int {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res, err := fleet.Run(sc, fleet.Options{Workers: workers})
	if err != nil {
		return fail(err)
	}
	card := &res.Scorecard
	fmt.Fprintf(stdout, "fleet           %d trees, policy %s, seed %d\n", card.Trees, card.Policy, card.Seed)
	fmt.Fprintf(stdout, "front door      %d jobs routed\n", card.Jobs)
	for _, row := range card.PerTree {
		line := fmt.Sprintf("tree %-3d        %-18s %6d jobs  flow %.4g  max %.4g  makespan %.4g",
			row.Tree, row.Topology, row.Jobs, row.TotalFlow, row.MaxFlow, row.Makespan)
		if row.Faults > 0 {
			line += fmt.Sprintf("  faults %d", row.Faults)
		}
		fmt.Fprintln(stdout, line)
	}
	fmt.Fprintf(stdout, "total flow      %.4g\n", card.TotalFlow)
	fmt.Fprintf(stdout, "weighted flow   %.4g\n", card.WeightedFlow)
	fmt.Fprintf(stdout, "makespan        %.4g\n", card.Makespan)
	if scorecardOut != "" {
		f, err := os.Create(scorecardOut)
		if err != nil {
			return fail(err)
		}
		if err := card.WriteJSON(f); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
	}
	return 0
}

// printedSpeed preserves the historical report line: the flag path
// always printed the -speed value (even under -checklemmas, which
// overrides the profile); scenario files print their own profile's
// uniform speed, or the router speed of a per-level triple.
func printedSpeed(sc *scenario.Scenario, fromFlags bool, speedFlag float64) float64 {
	if fromFlags {
		return speedFlag
	}
	switch {
	case sc.Speed.Uniform != 0:
		return sc.Speed.Uniform
	case sc.Speed.Router != 0:
		return sc.Speed.Router
	default:
		return 1
	}
}
