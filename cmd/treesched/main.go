// Command treesched runs one simulation of the tree network
// scheduling model and reports flow-time metrics.
//
// Usage:
//
//	treesched -topo fattree:2,2,2 -n 2000 -load 0.9 -assigner greedy \
//	          -policy sjf -speed 1.5 -eps 0.5 -seed 1 [-unrelated]
//	          [-render] [-gantt] [-trace jobs.json]
//
// Topologies: fattree:arity,depth,leaves | star:n | line:n |
// caterpillar:spine,leaves | broomstick:branches,handle,leaves |
// random:branches,maxdepth,maxchildren.
// Assigners: greedy | shadow | closest | random | roundrobin |
// leastvolume | minpath | jsq.
// Policies: sjf | fifo | srpt | lcfs.
package main

import (
	"flag"
	"fmt"
	"os"

	"treesched/internal/cli"
	"treesched/internal/core"
	"treesched/internal/lowerbound"
	"treesched/internal/metrics"
	"treesched/internal/rng"
	"treesched/internal/sim"
	"treesched/internal/trace"
	"treesched/internal/workload"
)

func main() {
	topo := flag.String("topo", "fattree:2,2,2", "topology spec")
	n := flag.Int("n", 2000, "number of jobs")
	load := flag.Float64("load", 0.9, "offered load vs root capacity")
	assigner := flag.String("assigner", "greedy", "leaf assignment policy")
	policy := flag.String("policy", "sjf", "node scheduling policy")
	speed := flag.Float64("speed", 1.5, "uniform node speed (resource augmentation)")
	eps := flag.Float64("eps", 0.5, "greedy rule epsilon / size class base-1")
	seed := flag.Uint64("seed", 1, "random seed")
	unrelated := flag.Bool("unrelated", false, "unrelated leaf processing times")
	packetized := flag.Bool("packetized", false, "unit-packet forwarding mode")
	render := flag.Bool("render", false, "print the topology before running")
	dot := flag.String("dot", "", "write the topology as Graphviz dot to this file")
	checkLemmas := flag.Bool("checklemmas", false, "validate Lemma 1/2 bounds during the run (forces lemma speed profile: 1x root-adjacent, (1+eps)x elsewhere)")
	gantt := flag.Bool("gantt", false, "print an ASCII Gantt chart (instrumented)")
	traceOut := flag.String("trace", "", "write the generated workload trace to this JSON file")
	resultOut := flag.String("result", "", "write per-job results to this JSON file")
	flag.Parse()

	t, err := cli.ParseTopo(*topo)
	if err != nil {
		fatal(err)
	}
	if *render {
		fmt.Print(trace.RenderTree(t))
	}
	if *dot != "" {
		if err := os.WriteFile(*dot, []byte(trace.DOT(t)), 0o644); err != nil {
			fatal(err)
		}
	}
	if *checkLemmas {
		// Lemmas 1-2 assume speed 1 on root-adjacent nodes and at
		// least 1+eps elsewhere.
		t = t.WithSpeeds(1, 1+*eps, 1+*eps)
	} else {
		t = t.WithUniformSpeed(*speed)
	}

	r := rng.New(*seed)
	tr, err := workload.Poisson(r, workload.GenConfig{
		N:        *n,
		Size:     workload.ClassRounded{Base: workload.UniformSize{Lo: 1, Hi: 16}, Eps: *eps},
		Load:     *load,
		Capacity: float64(len(t.RootAdjacent())),
	})
	if err != nil {
		fatal(err)
	}
	if *unrelated {
		if err := workload.MakeUnrelated(r, tr, workload.UnrelatedConfig{Leaves: len(t.Leaves()), Lo: 0.5, Hi: 2}); err != nil {
			fatal(err)
		}
		workload.RoundTraceToClasses(tr, *eps)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tr.WriteJSON(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	asg, err := cli.ParseAssigner(*assigner, t, *eps, *unrelated, *seed)
	if err != nil {
		fatal(err)
	}
	pol, err := cli.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	var lemma2 *core.Lemma2Checker
	opts := sim.Options{Policy: pol, Instrument: *gantt || *checkLemmas}
	if *checkLemmas {
		lemma2 = &core.Lemma2Checker{Eps: *eps, Unrelated: *unrelated, SampleStride: 5}
		opts.Observer = lemma2.Observe
	}
	run := sim.Run
	if *packetized {
		run = sim.RunPacketized
	}
	res, err := run(t, tr, asg, opts)
	if err != nil {
		fatal(err)
	}

	lb := lowerbound.Best(t, tr)
	sum := metrics.FlowSummary(res)
	fmt.Printf("topology        %s (%d nodes, %d machines)\n", *topo, t.NumNodes(), len(t.Leaves()))
	fmt.Printf("workload        %d jobs, load %.2f, seed %d\n", *n, *load, *seed)
	fmt.Printf("scheduler       %s + %s, speed %.2f\n", asg.Name(), pol.Name(), *speed)
	fmt.Printf("total flow      %.4g\n", res.Stats.TotalFlow)
	fmt.Printf("fractional flow %.4g\n", res.Stats.FracFlow)
	fmt.Printf("flow/job        %s\n", sum)
	fmt.Printf("makespan        %.4g, events %d\n", res.Stats.Makespan, res.Stats.Events)
	fmt.Printf("OPT lower bound %.4g  =>  competitive ratio <= %.3f\n", lb, res.Stats.TotalFlow/lb)
	b := metrics.Bottleneck(res)
	fmt.Printf("bottleneck      node %d at %.1f%% busy\n", b.Node, 100*b.Busy)
	if *checkLemmas {
		rep1 := core.CheckLemma1(res, *eps, *unrelated)
		fmt.Printf("Lemma 1         %d jobs, max ratio %.4f, violations %d\n", rep1.Jobs, rep1.MaxRatio, rep1.Violations)
		fmt.Printf("Lemma 2         %d checks, max ratio %.4f, violations %d\n", lemma2.Checks, lemma2.MaxRatio, lemma2.Violations)
	}
	if *gantt {
		fmt.Println()
		fmt.Print(trace.Gantt(res, 100))
	}
	if *resultOut != "" {
		f, err := os.Create(*resultOut)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "treesched:", err)
	os.Exit(1)
}
