// Command lpbound computes lower bounds on the optimal total flow
// time of an instance: the combinatorial bounds for any size, and the
// exact optimum of the paper's time-indexed LP (via the built-in
// simplex) for small instances.
//
// Usage:
//
//	lpbound -topo star:2 -trace jobs.json [-lp] [-horizon 0]
//	lpbound -topo star:2 -n 5 -load 0.8 -seed 1 [-lp]
//	lpbound -scenario run.json [-lp]
//
// Either replay a JSON trace (written by treesched -trace or
// tracegen) or generate a small Poisson instance in place. The flags
// assemble a scenario.Scenario; -scenario loads one from a file and
// -dump-scenario prints the assembled scenario as JSON.
package main

import (
	"flag"
	"fmt"
	"os"

	"treesched/internal/lowerbound"
	"treesched/internal/lp"
	"treesched/internal/scenario"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func main() {
	topoSpec := flag.String("topo", "star:2", "topology spec (see cmd/treesched)")
	tracePath := flag.String("trace", "", "JSON trace to load")
	n := flag.Int("n", 5, "jobs to generate when no trace is given")
	load := flag.Float64("load", 0.8, "offered load for generated traces")
	seed := flag.Uint64("seed", 1, "seed for generated traces")
	useLP := flag.Bool("lp", false, "also solve the time-indexed LP (small instances only)")
	horizon := flag.Int("horizon", 0, "LP horizon in unit slots (0 = scenario's horizon, else auto)")
	scenFile := flag.String("scenario", "", "load the scenario from this file (JSON or compact form) instead of the individual flags")
	dump := flag.Bool("dump-scenario", false, "print the scenario as JSON and exit without solving")
	flag.Parse()

	var sc *scenario.Scenario
	if *scenFile != "" {
		data, err := os.ReadFile(*scenFile)
		if err != nil {
			fatal(err)
		}
		if sc, err = scenario.Load(data); err != nil {
			fatal(err)
		}
	} else {
		ts, err := scenario.ParseSpec(*topoSpec)
		if err != nil {
			fatal(err)
		}
		sc = &scenario.Scenario{
			Topology: ts,
			Workload: scenario.Workload{
				N:    *n,
				Size: scenario.NewSpec("uniform", 1, 4),
				Load: *load,
			},
			Seed:    *seed,
			Horizon: *horizon,
		}
	}
	if *dump {
		if err := sc.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	var t *tree.Tree
	var tr *workload.Trace
	if *tracePath != "" {
		var err error
		if t, err = scenario.BuildTopo(sc.Topology); err != nil {
			fatal(err)
		}
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		tr, err = workload.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		in, err := sc.Build()
		if err != nil {
			fatal(err)
		}
		t, tr = in.Tree, in.Trace
	}

	hz := sc.Horizon
	if *horizon != 0 {
		hz = *horizon
	}
	fmt.Printf("instance: %d jobs on %q (%d nodes)\n", len(tr.Jobs), sc.Topology.String(), t.NumNodes())
	fmt.Printf("path-work bound          %.6g\n", lowerbound.PathWork(t, tr))
	fmt.Printf("aggregated-root SRPT     %.6g\n", lowerbound.AggregatedRootSRPT(t, tr))
	fmt.Printf("combined bound           %.6g\n", lowerbound.Combined(t, tr))
	fmt.Printf("best combinatorial bound %.6g\n", lowerbound.Best(t, tr))
	if *useLP {
		in, err := lp.Build(t, tr, hz)
		if err != nil {
			fatal(err)
		}
		vars := in.Problem.NumVars
		cons := len(in.Problem.Constraints)
		fmt.Printf("LP: %d variables, %d constraints, horizon %d\n", vars, cons, in.Horizon)
		sol, err := in.Solve()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("LP optimum               %.6g (%d pivots)\n", sol.Objective, sol.Iterations)
		fmt.Printf("LP/3 OPT lower bound     %.6g\n", lp.OPTLowerBound(sol.Objective))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lpbound:", err)
	os.Exit(1)
}
