// Command experiments regenerates the reproduction suite: every
// figure/theorem/lemma/baseline experiment indexed in DESIGN.md §4.
//
// Usage:
//
//	experiments [-run T1,L2] [-seed 1] [-scale 1] [-format md|text]
//	            [-out EXPERIMENTS.md] [-csv results/] [-parallel N]
//	            [-cpuprofile cpu.out] [-memprofile mem.out]
//
// With no -run it executes everything in ID order. -out writes a
// Markdown report (paper-vs-measured); -csv additionally dumps every
// table as CSV into the given directory. Experiments are
// deterministic for a given seed, so -parallel only affects wall
// time (use -parallel 1 when the B4 throughput numbers matter).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"treesched/internal/experiments"
	"treesched/internal/report"
)

func main() {
	runList := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Uint64("seed", 1, "random seed")
	scale := flag.Float64("scale", 1, "job-count scale factor")
	format := flag.String("format", "text", "output format: text or md")
	out := flag.String("out", "", "write the report to this file instead of stdout")
	csvDir := flag.String("csv", "", "also write every table as CSV into this directory")
	list := flag.Bool("list", false, "list experiments and exit")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS); results are deterministic either way")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-55s [%s]\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var selected []*experiments.Experiment
	if *runList == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			selected = append(selected, e)
		}
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	cfg := experiments.Config{Seed: *seed, Scale: *scale}
	start := time.Now()
	results := experiments.RunAll(selected, cfg, *parallel)
	elapsed := time.Since(start)

	var err error
	if *format == "md" {
		err = report.WriteMarkdown(w, results, report.Meta{
			Seed: *seed, Scale: *scale, Date: time.Now().Format("2006-01-02"),
		})
	} else {
		err = report.WriteText(w, results)
	}
	if err != nil {
		fatal(err)
	}
	if *csvDir != "" {
		if err := report.WriteCSVDir(*csvDir, results); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "suite (%d experiments) completed in %v\n", len(results), elapsed.Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
