package treesched_test

import (
	"testing"

	"treesched"
)

func TestFacadeQuickstart(t *testing.T) {
	tr := treesched.FatTree(2, 2, 2)
	trace, err := treesched.PoissonTrace(1, 300, 0.9, tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := treesched.Run(tr, trace, treesched.NewGreedyIdentical(0.5), treesched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Completed != 300 {
		t.Fatalf("completed %d/300", res.Stats.Completed)
	}
	lb := treesched.OPTLowerBound(tr, trace)
	if lb <= 0 || res.Stats.TotalFlow < lb {
		t.Fatalf("flow %v vs lower bound %v", res.Stats.TotalFlow, lb)
	}
}

func TestFacadeUnrelatedAndShadow(t *testing.T) {
	tr := treesched.FatTree(2, 1, 3)
	trace, err := treesched.PoissonTrace(2, 200, 0.8, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := treesched.MakeUnrelated(3, trace, tr, 0.5, 2); err != nil {
		t.Fatal(err)
	}
	sh, err := treesched.NewShadow(tr, treesched.ShadowConfig{Eps: 0.5, Unrelated: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := treesched.Run(tr, trace, sh, treesched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Finish(); err != nil {
		t.Fatal(err)
	}
	rep := treesched.CheckLemma8(res, sh)
	if rep.Jobs != 200 {
		t.Fatalf("Lemma8 compared %d jobs", rep.Jobs)
	}
}

func TestFacadeLemma1(t *testing.T) {
	tr := treesched.FatTree(2, 2, 2).WithSpeeds(1, 1.5, 1.5)
	trace, err := treesched.PoissonTrace(4, 300, 1.0, tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := treesched.Run(tr, trace, treesched.NewGreedyIdentical(0.5), treesched.Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := treesched.CheckLemma1(res, 0.5, false)
	if rep.Violations != 0 {
		t.Fatalf("Lemma 1 violations via facade: %d", rep.Violations)
	}
}

func TestFacadeReduceAndTopologies(t *testing.T) {
	for _, tr := range []*treesched.Tree{
		treesched.Star(3), treesched.Line(3), treesched.Caterpillar(3, 2),
		treesched.BroomstickTree(2, 3, 1), treesched.FatTree(2, 2, 1),
	} {
		bs, err := treesched.Reduce(tr)
		if err != nil {
			t.Fatal(err)
		}
		if len(bs.Reduced.Leaves()) != len(tr.Leaves()) {
			t.Fatal("reduction lost leaves")
		}
	}
}

func TestFacadeBaselines(t *testing.T) {
	tr := treesched.Star(4)
	trace, err := treesched.PoissonTrace(5, 150, 0.7, tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, asg := range []treesched.Assigner{
		treesched.ClosestLeaf{}, treesched.NewRandomLeaf(7),
		&treesched.RoundRobin{}, treesched.LeastVolume{},
		treesched.MinPathWork{}, treesched.JoinShortestQueue{},
	} {
		if _, err := treesched.Run(tr, trace, asg, treesched.Options{}); err != nil {
			t.Fatalf("%s: %v", asg.Name(), err)
		}
	}
}

func TestFacadePacketized(t *testing.T) {
	tr := treesched.Line(3)
	trace, err := treesched.PoissonTrace(6, 50, 0.5, tr)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := treesched.Run(tr, trace, treesched.ClosestLeaf{}, treesched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pk, err := treesched.RunPacketized(tr, trace, treesched.ClosestLeaf{}, treesched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pk.Stats.TotalFlow > sf.Stats.TotalFlow+1e-6 {
		t.Fatal("packetized slower than store-and-forward on a line")
	}
}

func TestFacadeWeightedAndPS(t *testing.T) {
	tr := treesched.Star(2)
	trace, err := treesched.PoissonTrace(8, 200, 0.8, tr)
	if err != nil {
		t.Fatal(err)
	}
	treesched.AssignWeights(9, trace, 5)
	wsjf, err := treesched.Run(tr, trace, &treesched.RoundRobin{}, treesched.Options{Policy: treesched.WSJF{}})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := treesched.Run(tr, trace, &treesched.RoundRobin{}, treesched.Options{Policy: treesched.PS{}})
	if err != nil {
		t.Fatal(err)
	}
	if wsjf.Stats.WeightedFlow <= 0 || ps.Stats.WeightedFlow <= 0 {
		t.Fatal("weighted flow missing")
	}
	if wsjf.Stats.WeightedFlow >= ps.Stats.WeightedFlow {
		t.Fatal("WSJF should beat PS on the weighted objective")
	}
}

func TestFacadeDualFit(t *testing.T) {
	stick := treesched.BroomstickTree(2, 3, 1)
	trace, err := treesched.PoissonTrace(10, 150, 0.8, stick)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := treesched.RunDualFit(stick, trace, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.C4Violations != 0 || rep.C5Violations != 0 {
		t.Fatalf("dual infeasible via facade: %+v", rep)
	}
	if rep.CertifiedOPTLowerBound <= 0 {
		t.Fatal("no certificate")
	}
}

func TestFacadeFaultsAndAudit(t *testing.T) {
	tr := treesched.FatTree(2, 2, 2)
	trace, err := treesched.PoissonTrace(5, 200, 0.8, tr)
	if err != nil {
		t.Fatal(err)
	}
	plan := &treesched.FaultPlan{Events: []treesched.FaultEvent{
		{Kind: treesched.Outage, Node: tr.Leaves()[0], Start: 5, End: 15},
		{Kind: treesched.LeafLoss, Node: tr.Leaves()[1], Start: 20},
	}}
	sched, err := treesched.CompileFaults(tr, plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := treesched.Run(tr, trace, treesched.NewGreedyIdentical(0.5), treesched.Options{
		Faults:       sched,
		Recovery:     treesched.RecoverRedispatch,
		Instrument:   true,
		RecordSlices: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Completed != 200 {
		t.Fatalf("completed %d/200 under redispatch", res.Stats.Completed)
	}
	if rep := res.Sim.Audit(); !rep.OK() {
		t.Fatalf("faulty run failed audit: %s", rep.Summary())
	}
}

func TestFacadeFaultyScenario(t *testing.T) {
	sc, err := treesched.ParseScenario([]byte(
		"topo=fattree:2,2,2 n=120 size=uniform:1,16 load=0.8 seed=9 " +
			"faults=brownouts:3,10,0.25 recovery=hold instrument slices"))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Faults == nil || sc.Faults.Plan.Name != "brownouts" {
		t.Fatalf("compact form lost the fault section: %+v", sc.Faults)
	}
	res, err := treesched.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Completed != 120 {
		t.Fatalf("completed %d/120 under brownouts", res.Stats.Completed)
	}
}

func TestFacadeStreaming(t *testing.T) {
	tr := treesched.FatTree(2, 2, 2)
	trace, err := treesched.PoissonTrace(9, 400, 0.9, tr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := treesched.Run(tr, trace, treesched.NewGreedyIdentical(0.5), treesched.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Full retention: streamed from the generator, bit-identical.
	src, err := treesched.PoissonSource(9, 400, 0.9, tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := treesched.RunStream(tr, src, treesched.NewGreedyIdentical(0.5), treesched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats != want.Stats || len(got.Jobs) != len(want.Jobs) {
		t.Fatalf("streamed stats %+v, want %+v", got.Stats, want.Stats)
	}
	for i := range got.Jobs {
		if got.Jobs[i] != want.Jobs[i] {
			t.Fatalf("job %d diverges: %+v vs %+v", i, got.Jobs[i], want.Jobs[i])
		}
	}

	// Bounded retention: memory-independent run, same order-free stats.
	bounded, err := treesched.RunStream(tr, treesched.NewTraceSource(trace),
		treesched.NewGreedyIdentical(0.5), treesched.Options{RetainJobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if bounded.Stream == nil || bounded.Stream.Completed != 400 {
		t.Fatalf("stream accumulator %+v, want 400 completions", bounded.Stream)
	}
	if len(bounded.Jobs) != 8 {
		t.Fatalf("retained %d jobs, want 8", len(bounded.Jobs))
	}
	if bounded.Stats.MaxFlow != want.Stats.MaxFlow || bounded.Stats.Makespan != want.Stats.Makespan {
		t.Fatalf("bounded stats %+v diverge from %+v", bounded.Stats, want.Stats)
	}
}
