// Benchmarks: one per experiment in the DESIGN.md §4 index (regenerate
// with `go test -bench . -benchmem`), plus engine micro-benchmarks.
// Each experiment bench runs its full kernel at a reduced scale; the
// full-scale numbers live in EXPERIMENTS.md (cmd/experiments).
package treesched_test

import (
	"testing"

	"treesched"
	"treesched/internal/experiments"
)

// benchExperiment runs a registered experiment at bench scale.
func benchExperiment(b *testing.B, id string, scale float64) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := e.Run(experiments.Config{Seed: uint64(i + 1), Scale: scale})
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Tables)+len(out.Texts) == 0 {
			b.Fatal("no artifacts")
		}
	}
}

func BenchmarkA0Scorecard(b *testing.B)            { benchExperiment(b, "A0", 0.05) }
func BenchmarkF1Render(b *testing.B)               { benchExperiment(b, "F1", 0.05) }
func BenchmarkF2Reduction(b *testing.B)            { benchExperiment(b, "F2", 0.05) }
func BenchmarkT1IdenticalCompetitive(b *testing.B) { benchExperiment(b, "T1", 0.05) }
func BenchmarkT2UnrelatedCompetitive(b *testing.B) { benchExperiment(b, "T2", 0.05) }
func BenchmarkT3FracIntegral(b *testing.B)         { benchExperiment(b, "T3", 0.05) }
func BenchmarkT4BroomstickOPT(b *testing.B)        { benchExperiment(b, "T4", 0.05) }
func BenchmarkT5BroomstickFractional(b *testing.B) { benchExperiment(b, "T5", 0.05) }
func BenchmarkT6BroomstickUnrelated(b *testing.B)  { benchExperiment(b, "T6", 0.05) }
func BenchmarkL1InteriorWait(b *testing.B)         { benchExperiment(b, "L1", 0.05) }
func BenchmarkL2VolumeBound(b *testing.B)          { benchExperiment(b, "L2", 0.05) }
func BenchmarkL3Potential(b *testing.B)            { benchExperiment(b, "L3", 0.05) }
func BenchmarkL8Domination(b *testing.B)           { benchExperiment(b, "L8", 0.05) }
func BenchmarkB1AssignerComparison(b *testing.B)   { benchExperiment(b, "B1", 0.05) }
func BenchmarkB2NodePolicies(b *testing.B)         { benchExperiment(b, "B2", 0.05) }
func BenchmarkB3SpeedSweep(b *testing.B)           { benchExperiment(b, "B3", 0.05) }
func BenchmarkB4EngineThroughput(b *testing.B)     { benchExperiment(b, "B4", 0.05) }
func BenchmarkB5GreedyAblation(b *testing.B)       { benchExperiment(b, "B5", 0.05) }
func BenchmarkB6Packetized(b *testing.B)           { benchExperiment(b, "B6", 0.05) }
func BenchmarkB7ShadowVsDirect(b *testing.B)       { benchExperiment(b, "B7", 0.05) }
func BenchmarkB8QueueAblation(b *testing.B)        { benchExperiment(b, "B8", 0.02) }
func BenchmarkLP1Bounds(b *testing.B)              { benchExperiment(b, "LP1", 1) }
func BenchmarkD1DualFitting(b *testing.B)          { benchExperiment(b, "D1", 0.05) }
func BenchmarkX1ArbitraryOrigins(b *testing.B)     { benchExperiment(b, "X1", 0.05) }
func BenchmarkX2MaxFlow(b *testing.B)              { benchExperiment(b, "X2", 0.05) }
func BenchmarkX3WeightedFlow(b *testing.B)         { benchExperiment(b, "X3", 0.05) }
func BenchmarkX4LineMaxFlow(b *testing.B)          { benchExperiment(b, "X4", 0.05) }
func BenchmarkW1WorkloadSensitivity(b *testing.B)  { benchExperiment(b, "W1", 0.05) }
func BenchmarkM1MachineModels(b *testing.B)        { benchExperiment(b, "M1", 0.05) }
func BenchmarkR1FaultDegradation(b *testing.B)     { benchExperiment(b, "R1", 0.05) }

// Engine micro-benchmarks.

func engineWorkload(b *testing.B, n int) (*treesched.Tree, *treesched.Trace) {
	b.Helper()
	t := treesched.FatTree(2, 2, 2)
	tr, err := treesched.PoissonTrace(42, n, 0.95, t)
	if err != nil {
		b.Fatal(err)
	}
	return t, tr
}

func BenchmarkEngineGreedySJF(b *testing.B) {
	t, tr := engineWorkload(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := treesched.Run(t, tr, treesched.NewGreedyIdentical(0.5), treesched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkEngineRoundRobinFIFO(b *testing.B) {
	t, tr := engineWorkload(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := treesched.Run(t, tr, &treesched.RoundRobin{}, treesched.Options{Policy: treesched.FIFO{}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineInstrumented(b *testing.B) {
	t, tr := engineWorkload(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := treesched.Run(t, tr, treesched.NewGreedyIdentical(0.5), treesched.Options{Instrument: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineShadow(b *testing.B) {
	t, tr := engineWorkload(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh, err := treesched.NewShadow(t, treesched.ShadowConfig{Eps: 0.5})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := treesched.Run(t, tr, sh, treesched.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnginePacketized(b *testing.B) {
	t, tr := engineWorkload(b, 300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := treesched.RunPacketized(t, tr, treesched.NewGreedyIdentical(0.5), treesched.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLowerBound(b *testing.B) {
	t, tr := engineWorkload(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if treesched.OPTLowerBound(t, tr) <= 0 {
			b.Fatal("vacuous bound")
		}
	}
}
